//! The experiment registry: one renderer per paper table and figure.
//!
//! Ids mirror the paper (`t2` = Table II, `f7` = Figure 7, …). Every
//! renderer consumes the generated trace and the precomputed
//! [`AnalysisReport`] and returns a self-describing text artifact —
//! tables as aligned text, figures as TSV series. The `repro` binary
//! walks this registry; `cargo bench` times the underlying computations.

use ddos_analytics::overview::intervals;
use ddos_analytics::source::dispersion::FamilyDispersion;
use ddos_analytics::source::prediction::MAX_EVAL_POINTS;
use ddos_analytics::target::organization::{widest_presence, OrgAnalysis};
use ddos_analytics::util::BotIndex;
use ddos_analytics::AnalysisReport;
use ddos_schema::{Family, Timestamp};
use ddos_sim::GeneratedTrace;

use crate::series::{render_blocks, Series};
use crate::table::Table;

/// One registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Registry id (`t2`, `f7`, …).
    pub id: &'static str,
    /// The paper artifact reproduced.
    pub title: &'static str,
    /// What the renderer emits.
    pub description: &'static str,
    render: fn(&GeneratedTrace, &AnalysisReport) -> String,
}

/// Renders one experiment by id.
pub fn render(id: &str, trace: &GeneratedTrace, report: &AnalysisReport) -> Option<String> {
    EXPERIMENTS
        .iter()
        .find(|e| e.id == id)
        .map(|e| (e.render)(trace, report))
}

/// All experiments, in paper order.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "t1",
        title: "Table I - workload schema",
        description: "field inventory of the DDoSattack schema",
        render: t1_schema,
    },
    Experiment {
        id: "t2",
        title: "Table II - protocol preferences of each botnet family",
        description: "attacks per (protocol, family)",
        render: t2_protocol_preferences,
    },
    Experiment {
        id: "t3",
        title: "Table III - summary of the workload information",
        description: "distinct-count summary, measured vs paper",
        render: t3_summary,
    },
    Experiment {
        id: "t4",
        title: "Table IV - geolocation distance prediction statistics",
        description: "ARIMA mean/std/cosine per family vs paper",
        render: t4_prediction,
    },
    Experiment {
        id: "t5",
        title: "Table V - country-level DDoS target statistics",
        description: "top-5 victim countries per family",
        render: t5_target_countries,
    },
    Experiment {
        id: "t6",
        title: "Table VI - botnets collaboration statistics",
        description: "intra-/inter-family collaboration pair counts",
        render: t6_collaboration,
    },
    Experiment {
        id: "f1",
        title: "Fig. 1 - popularity of attack types",
        description: "attacks per protocol",
        render: f1_protocols,
    },
    Experiment {
        id: "f2",
        title: "Fig. 2 - daily attack distribution",
        description: "attacks per day plus peak/mean stats",
        render: f2_daily,
    },
    Experiment {
        id: "f3",
        title: "Fig. 3 - attack interval CDF (all vs per-family basis)",
        description: "two interval CDFs",
        render: f3_interval_cdf,
    },
    Experiment {
        id: "f4",
        title: "Fig. 4 - attack interval distributions (clusters)",
        description: "non-simultaneous interval counts per duration band",
        render: f4_interval_bands,
    },
    Experiment {
        id: "f5",
        title: "Fig. 5 - per-family interval CDFs",
        description: "one interval CDF per active family",
        render: f5_family_cdfs,
    },
    Experiment {
        id: "f6",
        title: "Fig. 6 - attack durations over time",
        description: "(start, duration) scatter series + moments",
        render: f6_duration_scatter,
    },
    Experiment {
        id: "f7",
        title: "Fig. 7 - duration CDF",
        description: "duration CDF with the four-hour quantile",
        render: f7_duration_cdf,
    },
    Experiment {
        id: "f8",
        title: "Fig. 8 - weekly source shift patterns",
        description: "existing- vs new-country bot counts per week",
        render: f8_shifts,
    },
    Experiment {
        id: "f9",
        title: "Fig. 9 - geolocation dispersion CDFs",
        description: "dispersion CDF per qualifying family",
        render: f9_dispersion_cdfs,
    },
    Experiment {
        id: "f10",
        title: "Fig. 10 - Pandora dispersion histogram",
        description: "asymmetric dispersion histogram",
        render: |t, r| dispersion_histogram(t, r, Family::Pandora, 566.0, 0.767),
    },
    Experiment {
        id: "f11",
        title: "Fig. 11 - Blackenergy dispersion histogram",
        description: "asymmetric dispersion histogram",
        render: |t, r| dispersion_histogram(t, r, Family::Blackenergy, 4_304.0, 0.895),
    },
    Experiment {
        id: "f12",
        title: "Fig. 12 - Pandora dispersion prediction",
        description: "prediction vs truth histograms + error series",
        render: |t, r| prediction_figure(t, r, Family::Pandora),
    },
    Experiment {
        id: "f13",
        title: "Fig. 13 - Blackenergy dispersion prediction",
        description: "prediction vs truth histograms + error series",
        render: |t, r| prediction_figure(t, r, Family::Blackenergy),
    },
    Experiment {
        id: "f14",
        title: "Fig. 14 - Pandora organization-level target map",
        description: "per-organization markers (lat, lon, attacks)",
        render: f14_org_map,
    },
    Experiment {
        id: "f15",
        title: "Fig. 15 - Dirtjumper intra-family collaborations",
        description: "(botnet, date, magnitude) triples + event stats",
        render: f15_intra_collabs,
    },
    Experiment {
        id: "f16",
        title: "Fig. 16 - Dirtjumper x Pandora collaborations",
        description: "per-event durations and magnitudes over time",
        render: f16_flagship_pair,
    },
    Experiment {
        id: "f17",
        title: "Fig. 17 - consecutive-attack interval CDF",
        description: "chain gap CDF",
        render: f17_chain_gaps,
    },
    Experiment {
        id: "f18",
        title: "Fig. 18 - consecutive attacks over time",
        description: "(start, target, family, magnitude) of chained attacks",
        render: f18_chain_timeline,
    },
    // ----- extensions beyond the paper's printed artifacts -----
    Experiment {
        id: "x1",
        title: "Ext. 1 - family activity levels (§III-A, quantified)",
        description: "active days, duty cycle, attacks per active day",
        render: x1_activity,
    },
    Experiment {
        id: "x2",
        title: "Ext. 2 - next-attack start-time prediction (abstract finding 2)",
        description: "per-target recurrence trains and leave-last-out errors",
        render: x2_recurrence,
    },
    Experiment {
        id: "x3",
        title: "Ext. 3 - blacklist warm-up simulation (§V summary insight)",
        description: "repeat-attack source coverage by a per-victim blacklist",
        render: x3_blacklist,
    },
    Experiment {
        id: "x4",
        title: "Ext. 4 - detection-latency sweep (§III-D insight)",
        description: "mitigable attack-time vs detection latency",
        render: x4_latency,
    },
    Experiment {
        id: "x5",
        title: "Ext. 5 - country-prioritized takedown (§IV-B insight)",
        description: "cumulative attack participation removed per disinfected country",
        render: x5_takedown,
    },
];

// --------------------------------------------------------------- tables

fn t1_schema(_t: &GeneratedTrace, _r: &AnalysisReport) -> String {
    let mut t = Table::new(
        "Table I - information of workload entries",
        &["field", "description"],
    );
    for (f, d) in [
        ("ddos_id", "global unique identifier of the attack"),
        ("botnet_id", "unique identification of each botnet"),
        ("category", "nature (transport) of the attack"),
        ("target_ip", "IP address of the victim host"),
        ("timestamp", "attack start time"),
        ("end_time", "attack end time"),
        ("botnet_ip", "addresses of the bots involved"),
        ("asn", "autonomous system number"),
        ("cc", "target country (ISO 3166-1 alpha-2)"),
        ("city", "target city"),
        ("latitude/longitude", "target coordinates"),
    ] {
        t.row(&[f, d]);
    }
    t.render()
}

fn t2_protocol_preferences(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let mut t = Table::new(
        "Table II - protocol preferences of each botnet family",
        &["protocol", "family", "attacks"],
    );
    for row in &r.protocol_rows {
        t.row(&[
            row.protocol.name().to_string(),
            row.family.to_string(),
            row.attacks.to_string(),
        ]);
    }
    t.render()
}

fn t3_summary(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let m = &r.summary.measured;
    let p = &r.summary.paper;
    let mut t = Table::new(
        "Table III - summary of the workload information",
        &["description", "measured", "paper"],
    );
    t.row(&[
        "attacker ips".to_string(),
        m.attackers.ips.to_string(),
        p.attackers.0.to_string(),
    ]);
    t.row(&[
        "attacker cities".to_string(),
        m.attackers.cities.to_string(),
        p.attackers.1.to_string(),
    ]);
    t.row(&[
        "attacker countries".to_string(),
        m.attackers.countries.to_string(),
        p.attackers.2.to_string(),
    ]);
    t.row(&[
        "attacker orgs".to_string(),
        m.attackers.organizations.to_string(),
        p.attackers.3.to_string(),
    ]);
    t.row(&[
        "attacker asns".to_string(),
        m.attackers.asns.to_string(),
        p.attackers.4.to_string(),
    ]);
    t.row(&[
        "victim ips".to_string(),
        m.victims.ips.to_string(),
        p.victims.0.to_string(),
    ]);
    t.row(&[
        "victim cities".to_string(),
        m.victims.cities.to_string(),
        p.victims.1.to_string(),
    ]);
    t.row(&[
        "victim countries".to_string(),
        m.victims.countries.to_string(),
        p.victims.2.to_string(),
    ]);
    t.row(&[
        "victim orgs".to_string(),
        m.victims.organizations.to_string(),
        p.victims.3.to_string(),
    ]);
    t.row(&[
        "victim asns".to_string(),
        m.victims.asns.to_string(),
        p.victims.4.to_string(),
    ]);
    t.row(&[
        "attacks (ddos_id)".to_string(),
        m.attacks.to_string(),
        p.attacks.to_string(),
    ]);
    t.row(&[
        "botnet_id (attacking)".to_string(),
        m.botnets.to_string(),
        p.botnets.to_string(),
    ]);
    t.row(&[
        "traffic types".to_string(),
        m.traffic_types.to_string(),
        p.traffic_types.to_string(),
    ]);
    t.render()
}

/// The paper's Table IV reference rows: (family, mean, std, similarity).
pub const PAPER_TABLE_IV: &[(Family, f64, f64, f64)] = &[
    (Family::Blackenergy, 3_970.6, 2_294.4, 0.960),
    (Family::Pandora, 569.2, 1_842.5, 0.946),
    (Family::Dirtjumper, 1_229.1, 1_033.7, 0.848),
    (Family::Optima, 3_545.8, 1_717.8, 0.941),
    (Family::Colddeath, 341.6, 933.8, 0.809),
];

fn t4_prediction(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let mut t = Table::new(
        "Table IV - geolocation distance prediction statistics",
        &[
            "family",
            "group",
            "mean",
            "std",
            "similarity",
            "paper mean",
            "paper similarity",
        ],
    );
    for row in &r.prediction.rows {
        let e = &row.forecast.eval;
        let paper = PAPER_TABLE_IV.iter().find(|&&(f, ..)| f == row.family);
        let (pm, ps) = paper.map_or((f64::NAN, f64::NAN), |&(_, m, _, s)| (m, s));
        t.row(&[
            row.family.to_string(),
            "prediction".to_string(),
            format!("{:.1}", e.pred_mean),
            format!("{:.1}", e.pred_std),
            format!("{:.3}", e.cosine),
            format!("{pm:.1}"),
            format!("{ps:.3}"),
        ]);
        t.row(&[
            String::new(),
            "ground truth".to_string(),
            format!("{:.1}", e.truth_mean),
            format!("{:.1}", e.truth_std),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    let mut out = t.render();
    for row in &r.prediction.rows {
        if let Some(lb) = ddos_stats::timeseries::diagnostics::ljung_box(
            &row.forecast.errors,
            20,
            row.spec.num_params(),
        ) {
            out.push_str(&format!(
                "# {} residual whiteness (Ljung-Box, 20 lags): Q={:.1}, p={:.3} -> {}\n",
                row.family,
                lb.statistic,
                lb.p_value,
                if lb.is_white(0.05) {
                    "white (model captured the structure)"
                } else {
                    "residual structure remains"
                }
            ));
        }
    }
    if !r.prediction.excluded.is_empty() {
        out.push_str("\nexcluded: ");
        let ex: Vec<String> = r
            .prediction
            .excluded
            .iter()
            .map(|(f, why)| format!("{f} ({why:?})"))
            .collect();
        out.push_str(&ex.join(", "));
        out.push('\n');
    }
    out
}

fn t5_target_countries(trace: &GeneratedTrace, r: &AnalysisReport) -> String {
    let mut t = Table::new(
        "Table V - country-level DDoS target statistics",
        &["family", "countries", "top 5", "count"],
    );
    for profile in &r.target_countries {
        for (i, &(cc, n)) in profile.top(5).iter().enumerate() {
            t.row(&[
                if i == 0 {
                    profile.family.to_string()
                } else {
                    String::new()
                },
                if i == 0 {
                    profile.countries.to_string()
                } else {
                    String::new()
                },
                cc.to_string(),
                n.to_string(),
            ]);
        }
    }
    let mut out = t.render();
    out.push_str("\noverall top victim countries: ");
    let top: Vec<String> = r
        .overall_targets
        .iter()
        .map(|(cc, n)| format!("{cc}={n}"))
        .collect();
    out.push_str(&top.join(", "));
    out.push('\n');
    let asn = ddos_analytics::target::asn::AsnAnalysis::compute(&trace.dataset, None);
    out.push_str(&format!(
        "# victim ASes: {} distinct (paper 1260); top-10 hold {:.0}% of attacks; {} contested by 2+ families\n",
        asn.distinct_asns(),
        asn.top_k_share(10) * 100.0,
        asn.contested().count()
    ));
    out
}

/// The paper's Table VI reference rows.
pub const PAPER_TABLE_VI: &[(Family, u32, u32)] = &[
    (Family::Blackenergy, 0, 1),
    (Family::Colddeath, 0, 1),
    (Family::Darkshell, 253, 0),
    (Family::Ddoser, 134, 0),
    (Family::Dirtjumper, 756, 121),
    (Family::Nitol, 17, 0),
    (Family::Optima, 1, 1),
    (Family::Pandora, 10, 118),
    (Family::Yzf, 66, 0),
];

fn t6_collaboration(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let mut t = Table::new(
        "Table VI - botnets collaboration statistics (qualifying pairs)",
        &[
            "family",
            "intra-family",
            "inter-family",
            "paper intra",
            "paper inter",
        ],
    );
    for &(family, paper_intra, paper_inter) in PAPER_TABLE_VI {
        let intra = r
            .collaborations
            .intra_pairs
            .get(&family)
            .copied()
            .unwrap_or(0);
        let inter = r
            .collaborations
            .inter_pairs
            .get(&family)
            .copied()
            .unwrap_or(0);
        t.row(&[
            family.to_string(),
            intra.to_string(),
            inter.to_string(),
            paper_intra.to_string(),
            paper_inter.to_string(),
        ]);
    }
    t.render()
}

// --------------------------------------------------------------- figures

fn f1_protocols(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let mut t = Table::new(
        "Fig. 1 - popularity of attack types",
        &["protocol", "attacks"],
    );
    for &(p, n) in &r.protocols.counts {
        t.row(&[p.name().to_string(), n.to_string()]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nconnection-oriented fraction: {:.3}\n",
        r.protocols.connection_oriented_fraction()
    ));
    out
}

fn f2_daily(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let values: Vec<f64> = r.daily.counts.iter().map(|&c| c as f64).collect();
    let series = Series::from_values("attacks_per_day", &values);
    let mut out = series.render();
    if let Some((day, peak)) = r.daily.peak() {
        out.push_str(&format!(
            "# mean/day {:.1} (paper 243); peak {} on day {} = {} (paper 983 on 2012-08-30)\n",
            r.daily.mean_per_day(),
            peak,
            day,
            r.daily.date_of(day)
        ));
    }
    out
}

fn f3_interval_cdf(t: &GeneratedTrace, _r: &AnalysisReport) -> String {
    let all = intervals::all_intervals(&t.dataset);
    let mut family_based: Vec<i64> = Vec::new();
    for f in Family::ACTIVE {
        family_based.extend(intervals::family_intervals(&t.dataset, f));
    }
    let mut blocks = Vec::new();
    for (name, sample) in [("all_attacks", &all), ("family_based", &family_based)] {
        if let Some(cdf) = intervals::interval_cdf(sample) {
            blocks.push(Series::new(name, cdf.points()).downsample(400));
        }
    }
    let mut out = render_blocks(&blocks);
    if let Some(stats) = intervals::IntervalStats::compute(&family_based) {
        out.push_str(&format!(
            "# family-based: concurrent {:.3} (paper >0.5), mean {:.0}s (paper 3060), p80 {:.0}s (paper 1081), max {:.0}s\n",
            stats.concurrent_fraction, stats.mean, stats.p80, stats.max
        ));
    }
    out
}

fn f4_interval_bands(t: &GeneratedTrace, _r: &AnalysisReport) -> String {
    let mut table = Table::new(
        "Fig. 4 - interval clusters per family (simultaneous excluded)",
        &["family", "band", "intervals"],
    );
    for f in Family::ACTIVE {
        let ivs = intervals::family_intervals(&t.dataset, f);
        for (name, n) in intervals::interval_bands(&ivs) {
            if n > 0 {
                table.row(&[f.to_string(), name.to_string(), n.to_string()]);
            }
        }
    }
    table.render()
}

fn f5_family_cdfs(t: &GeneratedTrace, _r: &AnalysisReport) -> String {
    let mut blocks = Vec::new();
    for f in Family::ACTIVE {
        let ivs = intervals::family_intervals(&t.dataset, f);
        if let Some(cdf) = intervals::interval_cdf(&ivs) {
            blocks.push(Series::new(f.name(), cdf.points()).downsample(200));
        }
    }
    render_blocks(&blocks)
}

fn f6_duration_scatter(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let Some(d) = &r.durations else {
        return String::from("# no attacks\n");
    };
    let pts: Vec<(f64, f64)> = d
        .series
        .iter()
        .map(|&(start, dur)| (start.unix() as f64, dur))
        .collect();
    let mut out = Series::new("duration_s", pts).downsample(1_000).render();
    out.push_str(&format!(
        "# mean {:.0}s (paper 10308), median {:.0}s (paper 1766), std {:.0}s (paper 18475)\n",
        d.mean, d.median, d.std_dev
    ));
    out
}

fn f7_duration_cdf(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let Some(d) = &r.durations else {
        return String::from("# no attacks\n");
    };
    let cdf = d.cdf();
    let mut out = Series::new("duration_cdf", cdf.points())
        .downsample(400)
        .render();
    out.push_str(&format!(
        "# p80 {:.0}s (paper 13882 ~ 4h); under 60s {:.3} (paper <0.10)\n",
        d.p80,
        d.fraction_under(60.0)
    ));
    // Fig. 6's "wide-spread" claim, made testable: MLE log-normal fit
    // plus a KS check of how far the body deviates.
    let durations: Vec<f64> = d.series.iter().map(|&(_, v)| v).collect();
    if let Some(fitted) = ddos_stats::fit::fit_lognormal(&durations) {
        out.push_str(&format!(
            "# log-normal MLE: median {:.0}s, sigma {:.2}",
            fitted.mu.exp(),
            fitted.sigma
        ));
        if let Some(ks) =
            ddos_stats::fit::ks_test(&durations, |x| ddos_stats::fit::lognormal_cdf(&fitted, x))
        {
            out.push_str(&format!("; KS D={:.3} (n={})", ks.statistic, ks.n));
        }
        out.push('\n');
    }
    out
}

fn f8_shifts(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let existing: Vec<f64> = r
        .shifts
        .weeks
        .iter()
        .map(|w| w.existing_country_bots as f64)
        .collect();
    let fresh: Vec<f64> = r
        .shifts
        .weeks
        .iter()
        .map(|w| w.new_country_bots as f64)
        .collect();
    let mut out = render_blocks(&[
        Series::from_values("existing_country_bots", &existing),
        Series::from_values("new_country_bots", &fresh),
    ]);
    if let Some(ratio) = r.shifts.regionalization_ratio() {
        out.push_str(&format!(
            "# regionalization ratio {ratio:.1} (paper: existing on 1e4 axis vs new on 1e3 axis)\n"
        ));
    }
    out
}

fn f9_dispersion_cdfs(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let mut blocks = Vec::new();
    let mut notes = String::new();
    for fd in &r.dispersion {
        if let Some(cdf) = fd.cdf() {
            blocks.push(Series::new(fd.family.name(), cdf.points()).downsample(300));
        }
        notes.push_str(&format!(
            "# {}: symmetric {:.3}, asymmetric mean {:.0} km, n {}\n",
            fd.family,
            fd.symmetric_fraction(),
            fd.asymmetric_mean().unwrap_or(0.0),
            fd.series.len()
        ));
    }
    let mut out = render_blocks(&blocks);
    out.push_str(&notes);
    out
}

fn dispersion_histogram(
    t: &GeneratedTrace,
    _r: &AnalysisReport,
    family: Family,
    paper_mean: f64,
    paper_symmetric: f64,
) -> String {
    let bots = BotIndex::build(&t.dataset);
    let fd = FamilyDispersion::compute(&t.dataset, &bots, family);
    let Some(hist) = fd.asymmetric_histogram(40) else {
        return String::from("# no asymmetric snapshots\n");
    };
    let pts: Vec<(f64, f64)> = hist
        .centers()
        .into_iter()
        .map(|(c, n)| (c, n as f64))
        .collect();
    let mut out = Series::new(format!("{family}_dispersion_km"), pts).render();
    out.push_str(&format!(
        "# symmetric fraction {:.3} (paper {paper_symmetric}); asymmetric mean {:.0} km (paper {paper_mean})\n",
        fd.symmetric_fraction(),
        fd.asymmetric_mean().unwrap_or(0.0),
    ));
    out
}

fn prediction_figure(_t: &GeneratedTrace, r: &AnalysisReport, family: Family) -> String {
    let Some(row) = r.prediction.row(family) else {
        return format!("# {family} excluded from prediction (see t4)\n");
    };
    let f = &row.forecast;
    let mut blocks = vec![
        Series::from_values("prediction", &f.predictions).downsample(500),
        Series::from_values("ground_truth", &f.truth).downsample(500),
        Series::from_values("error", &f.errors).downsample(500),
    ];
    // Histogram comparison (the figures' top panels).
    let max = f
        .truth
        .iter()
        .chain(&f.predictions)
        .cloned()
        .fold(0.0f64, f64::max);
    if max > 0.0 {
        if let (Some(hp), Some(ht)) = (
            ddos_stats::Histogram::linear(&f.predictions, 0.0, max, 30),
            ddos_stats::Histogram::linear(&f.truth, 0.0, max, 30),
        ) {
            blocks.push(Series::new(
                "prediction_hist",
                hp.centers()
                    .into_iter()
                    .map(|(c, n)| (c, n as f64))
                    .collect(),
            ));
            blocks.push(Series::new(
                "truth_hist",
                ht.centers()
                    .into_iter()
                    .map(|(c, n)| (c, n as f64))
                    .collect(),
            ));
        }
    }
    let mut out = render_blocks(&blocks);
    out.push_str(&format!(
        "# {family}: cosine {:.3}, mean {:.1} vs truth {:.1}, eval {} points (cap {MAX_EVAL_POINTS})\n",
        f.eval.cosine, f.eval.pred_mean, f.eval.truth_mean, f.eval.n
    ));
    out
}

fn f14_org_map(t: &GeneratedTrace, _r: &AnalysisReport) -> String {
    // The paper's Fig. 14: Pandora, February 2013.
    let feb = (
        Timestamp::from_date(2013, 2, 1),
        Timestamp::from_date(2013, 3, 1),
    );
    let mut analysis = OrgAnalysis::compute(&t.dataset, Family::Pandora, Some(feb));
    if analysis.markers.is_empty() {
        // Scaled-down traces may be sparse in February; fall back to the
        // whole window so the artifact is never empty.
        analysis = OrgAnalysis::compute(&t.dataset, Family::Pandora, None);
    }
    let mut table = Table::new(
        "Fig. 14 - Pandora organization-level targets",
        &["org", "lat", "lon", "attacks", "targets"],
    );
    for m in analysis.markers.iter().take(40) {
        let name = t
            .geo
            .org(m.org)
            .map(|o| o.name.clone())
            .unwrap_or_else(|| m.org.to_string());
        table.row(&[
            name,
            format!("{:.2}", m.coords.lat),
            format!("{:.2}", m.coords.lon),
            m.attacks.to_string(),
            m.targets.to_string(),
        ]);
    }
    let mut out = table.render();
    if let Some((family, orgs)) = widest_presence(&t.dataset) {
        out.push_str(&format!(
            "# widest presence: {family} attacking {orgs} organizations (paper: Dirtjumper)\n"
        ));
    }
    out
}

fn f15_intra_collabs(t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let points = r
        .collaborations
        .intra_family_points(&t.dataset, Family::Dirtjumper);
    let mut table = Table::new(
        "Fig. 15 - Dirtjumper intra-family collaborations",
        &["botnet", "date", "magnitude"],
    );
    for &(botnet, date, magnitude) in points.iter().take(60) {
        table.row(&[botnet.to_string(), date.to_string(), magnitude.to_string()]);
    }
    let mut out = table.render();
    if let Some(avg) = r.collaborations.mean_botnets_per_event(Family::Dirtjumper) {
        out.push_str(&format!(
            "# mean botnets per collaboration event: {avg:.2} (paper 2.19); {} points total\n",
            points.len()
        ));
    }
    out
}

fn f16_flagship_pair(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let Some(focus) = &r.flagship_pair else {
        return String::from("# no Dirtjumper x Pandora collaborations detected\n");
    };
    let dur_a: Vec<(f64, f64)> = focus
        .series
        .iter()
        .map(|&(t, da, ..)| (t.unix() as f64, da))
        .collect();
    let dur_b: Vec<(f64, f64)> = focus
        .series
        .iter()
        .map(|&(t, _, db, ..)| (t.unix() as f64, db))
        .collect();
    let mag_a: Vec<(f64, f64)> = focus
        .series
        .iter()
        .map(|&(t, _, _, ma, _)| (t.unix() as f64, ma as f64))
        .collect();
    let mag_b: Vec<(f64, f64)> = focus
        .series
        .iter()
        .map(|&(t, _, _, _, mb)| (t.unix() as f64, mb as f64))
        .collect();
    let mut out = render_blocks(&[
        Series::new("dirtjumper_duration_s", dur_a),
        Series::new("pandora_duration_s", dur_b),
        Series::new("dirtjumper_magnitude", mag_a),
        Series::new("pandora_magnitude", mag_b),
    ]);
    out.push_str(&format!(
        "# {} events, {} unique targets (paper 96) in {} countries (paper 16), {} orgs (paper 58), {} ASes (paper 61)\n",
        focus.series.len(),
        focus.unique_targets,
        focus.countries.len(),
        focus.organizations,
        focus.asns
    ));
    out.push_str(&format!(
        "# mean durations: dirtjumper {:.0}s (paper 5083), pandora {:.0}s (paper 6420)\n",
        focus.mean_duration_a, focus.mean_duration_b
    ));
    out
}

fn f17_chain_gaps(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let Some(cdf) = r.multistage.gap_cdf() else {
        return String::from("# no chains detected\n");
    };
    let mut out = Series::new("chain_gap_cdf", cdf.points())
        .downsample(300)
        .render();
    out.push_str(&format!(
        "# under 10s: {:.3} (paper ~0.65); under 30s: {:.3} (paper ~0.80)\n",
        cdf.eval(10.0),
        cdf.eval(30.0)
    ));
    if let Some((mean, median, std)) = r.multistage.gap_stats() {
        out.push_str(&format!(
            "# gap mean {mean:.2}s, median {median:.1}s, std {std:.1}s\n"
        ));
    }
    out
}

fn f18_chain_timeline(t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let timeline = r.multistage.timeline(&t.dataset);
    let mut table = Table::new(
        "Fig. 18 - consecutive attacks over time",
        &["start", "target", "family", "magnitude"],
    );
    for &(start, target, family, magnitude) in timeline.iter().take(80) {
        table.row(&[
            start.to_string(),
            target.to_string(),
            family.to_string(),
            magnitude.to_string(),
        ]);
    }
    let mut out = table.render();
    if let Some(longest) = r.multistage.longest() {
        out.push_str(&format!(
            "# {} chained attacks in {} chains; longest {} links by {} (paper: 22 by ddoser on 2012-08-30); families {:?}\n",
            timeline.len(),
            r.multistage.chains.len(),
            longest.len(),
            longest.families[0],
            r.multistage
                .chain_families()
                .iter()
                .map(|f| f.name())
                .collect::<Vec<_>>()
        ));
    }
    out
}

// -------------------------------------------------------------- extensions

fn x1_activity(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let mut table = Table::new(
        "Ext. 1 - family activity levels",
        &["family", "attacks", "active days", "duty", "attacks/day"],
    );
    for a in &r.activity {
        table.row(&[
            a.family.to_string(),
            a.attacks.to_string(),
            a.active_days.to_string(),
            format!("{:.2}", a.duty_cycle),
            format!("{:.1}", a.attacks_per_active_day),
        ]);
    }
    let mut out = table.render();
    if let Some(be) = r.activity.iter().find(|a| a.family == Family::Blackenergy) {
        out.push_str(&format!(
            "# blackenergy duty cycle {:.2} (paper: active ~1/3 of the period)\n",
            be.duty_cycle
        ));
    }
    out
}

fn x2_recurrence(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let rec = &r.recurrence;
    let mut out = String::new();
    out.push_str(&format!(
        "# {} repeatedly-attacked targets; {} evaluated for next-start prediction\n",
        rec.trains.len(),
        rec.outcomes.len()
    ));
    if let Some(train) = rec.hottest_target() {
        out.push_str(&format!(
            "# hottest target {} suffered {} attacks from {:?}\n",
            train.target,
            train.len(),
            train.families.iter().map(|f| f.name()).collect::<Vec<_>>()
        ));
    }
    if let Some(cdf) = rec.error_cdf() {
        out.push_str(
            &Series::new("abs_error_cdf_s", cdf.points())
                .downsample(200)
                .render(),
        );
    }
    if let Some(median) = rec.median_abs_error() {
        let close = rec
            .outcomes
            .iter()
            .filter(|o| o.relative_error <= 0.5)
            .count() as f64
            / rec.outcomes.len().max(1) as f64;
        out.push_str(&format!(
            "# median |error| {:.0}s; within 1 h {:.2}; within half a typical gap {close:.2}\n",
            median,
            rec.fraction_within(3_600.0),
        ));
        out.push_str(
            "# note: synthetic per-target trains are Zipf-recurrent, not periodic, so\n             # accuracy is judged relative to each target's own cadence\n",
        );
    }
    out
}

fn x3_blacklist(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let sim = &r.blacklist;
    let mut table = Table::new(
        "Ext. 3 - blacklist coverage by repeat round",
        &["round", "mean coverage", "samples"],
    );
    for (round, mean, n) in sim.coverage_by_round(8) {
        table.row(&[round.to_string(), format!("{mean:.3}"), n.to_string()]);
    }
    let mut out = table.render();
    if let Some(mean) = sim.mean_coverage() {
        out.push_str(&format!(
            "# overall mean coverage {mean:.3} over {} repeat attacks\n",
            sim.hits.len()
        ));
    }
    for family in [Family::Dirtjumper, Family::Pandora] {
        if let Some(mean) = sim.mean_coverage_for(family) {
            out.push_str(&format!("# {family}: {mean:.3}\n"));
        }
    }
    out
}

fn x4_latency(_t: &GeneratedTrace, r: &AnalysisReport) -> String {
    let mut table = Table::new(
        "Ext. 4 - detection-latency sweep",
        &["latency", "mitigable attack-time", "attacks fully missed"],
    );
    for p in &r.latency {
        let label = match p.latency_s as i64 {
            60 => "1 min (automatic)".to_string(),
            600 => "10 min".to_string(),
            3_600 => "1 h (semi-automatic)".to_string(),
            14_400 => "4 h (paper's window)".to_string(),
            86_400 => "1 day (manual)".to_string(),
            other => format!("{other}s"),
        };
        table.row(&[
            label,
            format!("{:.3}", p.mitigable_fraction),
            format!("{:.3}", p.missed_attacks),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "# §III-D: only automatic detection responds inside the typical attack lifetime\n",
    );
    out
}

fn x5_takedown(t: &GeneratedTrace, _r: &AnalysisReport) -> String {
    let bots = BotIndex::build(&t.dataset);
    let steps = ddos_analytics::defense::takedown_priority(&t.dataset, &bots, 10);
    let mut table = Table::new(
        "Ext. 5 - country-prioritized takedown",
        &[
            "step",
            "country",
            "bots removed",
            "cumulative participation removed",
        ],
    );
    for (i, s) in steps.iter().enumerate() {
        table.row(&[
            (i + 1).to_string(),
            s.country.to_string(),
            s.bots_removed.to_string(),
            format!("{:.3}", s.cumulative_participation_removed),
        ]);
    }
    let mut out = table.render();
    if let Some(last) = steps.last() {
        out.push_str(&format!(
            "# disinfecting the top {} countries removes {:.0}% of attack participation\n",
            steps.len(),
            last.cumulative_participation_removed * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn fixtures() -> &'static (GeneratedTrace, AnalysisReport) {
        static FIX: OnceLock<(GeneratedTrace, AnalysisReport)> = OnceLock::new();
        FIX.get_or_init(|| {
            let trace = ddos_sim::generate(&ddos_sim::SimConfig::small());
            let report = AnalysisReport::run(&trace.dataset);
            (trace, report)
        })
    }

    #[test]
    fn registry_covers_every_table_and_figure() {
        let ids: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id).collect();
        for t in ["t1", "t2", "t3", "t4", "t5", "t6"] {
            assert!(ids.contains(&t), "missing {t}");
        }
        for f in 1..=18 {
            let id = format!("f{f}");
            assert!(ids.iter().any(|&i| i == id), "missing {id}");
        }
        for x in 1..=5 {
            let id = format!("x{x}");
            assert!(ids.iter().any(|&i| i == id), "missing extension {id}");
        }
        // Ids are unique.
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn every_experiment_renders_nonempty() {
        let (trace, report) = fixtures();
        for e in EXPERIMENTS {
            let out = render(e.id, trace, report).expect("registered id renders");
            assert!(!out.trim().is_empty(), "{} rendered empty", e.id);
        }
    }

    #[test]
    fn unknown_id_is_none() {
        let (trace, report) = fixtures();
        assert!(render("f99", trace, report).is_none());
    }

    #[test]
    fn table_ii_lists_dirtjumper_http() {
        let (trace, report) = fixtures();
        let out = render("t2", trace, report).unwrap();
        assert!(out.contains("HTTP"));
        assert!(out.contains("dirtjumper"));
    }

    #[test]
    fn figure_outputs_are_tsv_like() {
        let (trace, report) = fixtures();
        for id in ["f2", "f3", "f7", "f8"] {
            let out = render(id, trace, report).unwrap();
            assert!(out.contains('\t'), "{id} has no TSV rows");
            assert!(out.contains("# "), "{id} has no annotation");
        }
    }
}
