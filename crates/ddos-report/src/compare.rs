//! Paper-vs-measured comparison rows.
//!
//! Every quantitative claim the paper makes gets a [`Comparison`] row:
//! the published value, the value measured on the generated trace, and a
//! shape verdict. EXPERIMENTS.md is generated from these rows by the
//! `repro` binary.

use std::fmt::Write as _;

/// One compared quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// What is being compared (e.g. `"Table IV pandora cosine"`).
    pub what: String,
    /// The paper's value.
    pub paper: f64,
    /// The measured value.
    pub measured: f64,
    /// Tolerated relative deviation for the "shape holds" verdict
    /// (`0.25` = within 25%).
    pub tolerance: f64,
}

impl Comparison {
    /// Creates a comparison row.
    pub fn new<S: Into<String>>(what: S, paper: f64, measured: f64, tolerance: f64) -> Comparison {
        Comparison {
            what: what.into(),
            paper,
            measured,
            tolerance,
        }
    }

    /// Relative deviation `|measured − paper| / |paper|` (infinite for a
    /// zero paper value and non-zero measurement).
    pub fn relative_error(&self) -> f64 {
        if self.paper == 0.0 {
            return if self.measured == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        (self.measured - self.paper).abs() / self.paper.abs()
    }

    /// Whether the measured value is within tolerance of the paper's.
    pub fn holds(&self) -> bool {
        self.relative_error() <= self.tolerance
    }

    /// Verdict marker for reports.
    pub fn verdict(&self) -> &'static str {
        if self.holds() {
            "ok"
        } else {
            "off"
        }
    }
}

/// Renders comparison rows as a markdown table.
pub fn render_markdown(title: &str, rows: &[Comparison]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {title}\n");
    let _ = writeln!(out, "| quantity | paper | measured | rel. err | verdict |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for r in rows {
        let err = r.relative_error();
        let err = if err.is_infinite() {
            "inf".to_string()
        } else {
            format!("{:.1}%", err * 100.0)
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            r.what,
            trim_float(r.paper),
            trim_float(r.measured),
            err,
            r.verdict()
        );
    }
    out
}

/// Formats a float without trailing zeros (integers print bare).
pub fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Builds the full paper-vs-measured comparison, one section per
/// experiment. Tolerances encode the *shape* bar from DESIGN.md: tight
/// where the quantity is calibrated, loose where it is emergent.
pub fn paper_comparisons(
    trace: &ddos_sim::GeneratedTrace,
    report: &ddos_analytics::AnalysisReport,
) -> Vec<(String, Vec<Comparison>)> {
    use ddos_analytics::overview::intervals;
    use ddos_schema::Family;

    let ds = &trace.dataset;
    let mut sections = Vec::new();

    // --- Table II / Fig. 1 ------------------------------------------------
    let http = report
        .protocols
        .counts
        .iter()
        .find(|&&(p, _)| p == ddos_schema::Protocol::Http)
        .map_or(0, |&(_, n)| n);
    sections.push((
        "Table II / Fig. 1 — protocol mix".to_string(),
        vec![
            Comparison::new("total attacks", 50_704.0, ds.len() as f64, 0.01),
            Comparison::new("HTTP attacks", 47_734.0, http as f64, 0.01),
            Comparison::new(
                "connection-oriented fraction",
                0.956,
                report.protocols.connection_oriented_fraction(),
                0.05,
            ),
        ],
    ));

    // --- Table III ----------------------------------------------------------
    let m = report.summary.measured;
    let p = report.summary.paper;
    sections.push((
        "Table III — workload summary".to_string(),
        vec![
            Comparison::new(
                "attacker IPs",
                p.attackers.0 as f64,
                m.attackers.ips as f64,
                0.10,
            ),
            Comparison::new(
                "attacker cities",
                p.attackers.1 as f64,
                m.attackers.cities as f64,
                0.15,
            ),
            Comparison::new(
                "attacker countries",
                p.attackers.2 as f64,
                m.attackers.countries as f64,
                0.10,
            ),
            Comparison::new(
                "attacker orgs",
                p.attackers.3 as f64,
                m.attackers.organizations as f64,
                0.35,
            ),
            Comparison::new(
                "attacker ASNs",
                p.attackers.4 as f64,
                m.attackers.asns as f64,
                0.35,
            ),
            Comparison::new("victim IPs", p.victims.0 as f64, m.victims.ips as f64, 0.10),
            Comparison::new(
                "victim cities",
                p.victims.1 as f64,
                m.victims.cities as f64,
                0.60,
            ),
            Comparison::new(
                "victim countries",
                p.victims.2 as f64,
                m.victims.countries as f64,
                0.10,
            ),
            Comparison::new(
                "victim orgs",
                p.victims.3 as f64,
                m.victims.organizations as f64,
                0.35,
            ),
            Comparison::new(
                "victim ASNs",
                p.victims.4 as f64,
                m.victims.asns as f64,
                0.35,
            ),
            Comparison::new(
                "attacking botnet ids",
                p.botnets as f64,
                m.botnets as f64,
                0.10,
            ),
            Comparison::new("traffic types", 7.0, m.traffic_types as f64, 0.0),
        ],
    ));

    // --- Fig. 2 ----------------------------------------------------------------
    let peak = report.daily.peak().map_or(0, |(_, c)| c);
    sections.push((
        "Fig. 2 — daily distribution".to_string(),
        vec![
            Comparison::new("mean attacks/day", 243.0, report.daily.mean_per_day(), 0.05),
            Comparison::new("peak day attacks", 983.0, peak as f64, 0.10),
            Comparison::new(
                "peak is 2012-08-30 (day 1)",
                1.0,
                report.daily.peak().map_or(-1.0, |(d, _)| d as f64),
                0.0,
            ),
        ],
    ));

    // --- Figs. 3-5 --------------------------------------------------------------
    let mut family_based: Vec<i64> = Vec::new();
    for f in Family::ACTIVE {
        family_based.extend(intervals::family_intervals(ds, f));
    }
    if let Some(stats) = intervals::IntervalStats::compute(&family_based) {
        sections.push((
            "Figs. 3–5 — attack intervals".to_string(),
            vec![
                Comparison::new(
                    "concurrent interval fraction",
                    0.50,
                    stats.concurrent_fraction,
                    0.12,
                ),
                Comparison::new("interval p80 (s)", 1_081.0, stats.p80, 1.0),
                Comparison::new("interval mean (s)", 3_060.0, stats.mean, 1.0),
            ],
        ));
    }
    let single = report.concurrency.single_family_events.len();
    let multi = report.concurrency.multi_family_events.len();
    sections.push((
        "§III-B — concurrent events".to_string(),
        vec![
            Comparison::new("single-family events", 3_692.0, single as f64, 0.25),
            Comparison::new("multi-family events", 956.0, multi as f64, 0.25),
            Comparison::new(
                "families with simultaneous attacks",
                7.0,
                report.concurrency.families_with_simultaneous().len() as f64,
                0.15,
            ),
        ],
    ));

    // --- Figs. 6-7 -----------------------------------------------------------------
    if let Some(d) = &report.durations {
        sections.push((
            "Figs. 6–7 — durations".to_string(),
            vec![
                Comparison::new("duration mean (s)", 10_308.0, d.mean, 0.5),
                Comparison::new("duration median (s)", 1_766.0, d.median, 0.3),
                Comparison::new("duration std (s)", 18_475.0, d.std_dev, 0.5),
                Comparison::new("duration p80 (s)", 13_882.0, d.p80, 0.5),
                Comparison::new("fraction under 60 s", 0.05, d.fraction_under(60.0), 1.0),
            ],
        ));
    }

    // --- Fig. 8 -----------------------------------------------------------------------
    if let Some(ratio) = report.shifts.regionalization_ratio() {
        sections.push((
            "Fig. 8 — shift patterns".to_string(),
            vec![Comparison::new(
                "existing/new country shift ratio (paper ~10x axes)",
                10.0,
                ratio,
                1.5,
            )],
        ));
    }

    // --- Figs. 9-11 ------------------------------------------------------------------
    let mut rows = Vec::new();
    for (family, paper_sym, paper_mean) in [
        (Family::Pandora, 0.767, 566.0),
        (Family::Blackenergy, 0.895, 4_304.0),
    ] {
        if let Some(fd) = report.dispersion.iter().find(|f| f.family == family) {
            rows.push(Comparison::new(
                format!("{family} symmetric fraction"),
                paper_sym,
                fd.symmetric_fraction(),
                0.08,
            ));
            rows.push(Comparison::new(
                format!("{family} asymmetric mean (km)"),
                paper_mean,
                fd.asymmetric_mean().unwrap_or(0.0),
                1.5,
            ));
        }
    }
    if let Some(dj) = report
        .dispersion
        .iter()
        .find(|f| f.family == Family::Dirtjumper)
    {
        rows.push(Comparison::new(
            "dirtjumper symmetric fraction (Fig. 9 >0.4)",
            0.45,
            dj.symmetric_fraction(),
            0.15,
        ));
    }
    sections.push(("Figs. 9–11 — dispersion".to_string(), rows));

    // --- Table IV -----------------------------------------------------------------------
    let mut rows = Vec::new();
    for &(family, mean, _std, sim) in crate::experiments::PAPER_TABLE_IV {
        match report.prediction.row(family) {
            Some(row) => {
                rows.push(Comparison::new(
                    format!("{family} cosine similarity"),
                    sim,
                    row.forecast.eval.cosine,
                    0.15,
                ));
                rows.push(Comparison::new(
                    format!("{family} truth mean (km)"),
                    mean,
                    row.forecast.eval.truth_mean,
                    3.0,
                ));
            }
            None => rows.push(Comparison::new(
                format!("{family} qualifies for Table IV"),
                1.0,
                0.0,
                0.0,
            )),
        }
    }
    rows.push(Comparison::new(
        "families in Table IV",
        5.0,
        report.prediction.rows.len() as f64,
        0.0,
    ));
    sections.push(("Table IV — source prediction".to_string(), rows));

    // --- Table V ----------------------------------------------------------------------------
    let mut rows = Vec::new();
    // (family, paper favourite, strict?) — strict where Table V's leader
    // is far ahead; photo-finish rows (Blackenergy NL 949 vs US 820,
    // Optima RU 171 vs DE 155, YZF RU 120 vs UA 105, and Ddoser whose
    // printed counts exceed its attack total) only require top-2.
    for (family, fav, strict) in [
        (Family::Aldibot, "US", false),
        (Family::Blackenergy, "NL", false),
        (Family::Colddeath, "IN", true),
        (Family::Darkshell, "CN", true),
        (Family::Ddoser, "MX", false),
        (Family::Dirtjumper, "US", true),
        (Family::Nitol, "CN", true),
        (Family::Optima, "RU", false),
        (Family::Pandora, "RU", true),
        (Family::Yzf, "RU", false),
    ] {
        let profile = report.target_countries.iter().find(|p| p.family == family);
        let hit = profile.map_or(0.0, |p| {
            let k = if strict { 1 } else { 2 };
            if p.top(k).iter().any(|(cc, _)| cc.as_str() == fav) {
                1.0
            } else {
                0.0
            }
        });
        let what = if strict {
            format!("{family} favourite is {fav}")
        } else {
            format!("{family} top-2 contains {fav}")
        };
        rows.push(Comparison::new(what, 1.0, hit, 0.0));
    }
    let top: Vec<&str> = report
        .overall_targets
        .iter()
        .map(|(cc, _)| cc.as_str())
        .collect();
    for (i, cc) in ["US", "RU", "DE", "UA", "NL"].iter().enumerate() {
        rows.push(Comparison::new(
            format!("overall #{} is {cc}", i + 1),
            1.0,
            if top.get(i) == Some(cc) { 1.0 } else { 0.0 },
            0.0,
        ));
    }
    sections.push(("Table V — victim countries".to_string(), rows));

    // --- Table VI / Figs. 15-18 ------------------------------------------------------------
    let mut rows = Vec::new();
    for &(family, intra, inter) in crate::experiments::PAPER_TABLE_VI {
        if intra > 0 {
            let measured = report
                .collaborations
                .intra_pairs
                .get(&family)
                .copied()
                .unwrap_or(0);
            rows.push(Comparison::new(
                format!("{family} intra-family pairs"),
                intra as f64,
                measured as f64,
                0.8,
            ));
        }
        if inter > 0 {
            let measured = report
                .collaborations
                .inter_pairs
                .get(&family)
                .copied()
                .unwrap_or(0);
            rows.push(Comparison::new(
                format!("{family} inter-family pairs"),
                inter as f64,
                measured as f64,
                0.8,
            ));
        }
    }
    if let Some(avg) = report
        .collaborations
        .mean_botnets_per_event(Family::Dirtjumper)
    {
        rows.push(Comparison::new("dirtjumper botnets/event", 2.19, avg, 0.15));
    }
    sections.push(("Table VI / Fig. 15 — collaborations".to_string(), rows));

    let mut rows = Vec::new();
    if let Some(focus) = &report.flagship_pair {
        rows.push(Comparison::new(
            "dj×pandora unique targets",
            96.0,
            focus.unique_targets as f64,
            0.4,
        ));
        // Emergent spread of the shared pool; "tens of targets in
        // tens-of-countries minus a bit" is the shape claim.
        rows.push(Comparison::new(
            "dj×pandora countries",
            16.0,
            focus.countries.len() as f64,
            0.65,
        ));
        rows.push(Comparison::new(
            "dj×pandora orgs",
            58.0,
            focus.organizations as f64,
            0.5,
        ));
        rows.push(Comparison::new(
            "dj×pandora ASes",
            61.0,
            focus.asns as f64,
            0.5,
        ));
        rows.push(Comparison::new(
            "dirtjumper mean duration (s)",
            5_083.0,
            focus.mean_duration_a,
            0.4,
        ));
        rows.push(Comparison::new(
            "pandora mean duration (s)",
            6_420.0,
            focus.mean_duration_b,
            0.4,
        ));
    }
    sections.push(("Fig. 16 — Dirtjumper × Pandora".to_string(), rows));

    let mut rows = Vec::new();
    if let Some(cdf) = report.multistage.gap_cdf() {
        rows.push(Comparison::new(
            "chain gaps under 10 s",
            0.65,
            cdf.eval(10.0),
            0.20,
        ));
        rows.push(Comparison::new(
            "chain gaps under 30 s",
            0.80,
            cdf.eval(30.0),
            0.15,
        ));
    }
    if let Some(longest) = report.multistage.longest() {
        rows.push(Comparison::new(
            "longest chain links",
            22.0,
            longest.len() as f64,
            0.05,
        ));
        rows.push(Comparison::new(
            "longest chain is ddoser",
            1.0,
            if longest.families == [Family::Ddoser] {
                1.0
            } else {
                0.0
            },
            0.0,
        ));
    }
    let intra_chains = report
        .multistage
        .chains
        .iter()
        .filter(|c| c.is_intra_family())
        .count();
    rows.push(Comparison::new(
        "intra-family chain fraction",
        1.0,
        intra_chains as f64 / report.multistage.chains.len().max(1) as f64,
        0.05,
    ));
    sections.push(("Figs. 17–18 — multistage chains".to_string(), rows));

    sections
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_and_verdict() {
        let c = Comparison::new("x", 100.0, 110.0, 0.15);
        assert!((c.relative_error() - 0.1).abs() < 1e-12);
        assert!(c.holds());
        assert_eq!(c.verdict(), "ok");
        let bad = Comparison::new("y", 100.0, 200.0, 0.15);
        assert!(!bad.holds());
        assert_eq!(bad.verdict(), "off");
    }

    #[test]
    fn zero_paper_value() {
        assert!(Comparison::new("z", 0.0, 0.0, 0.1).holds());
        assert!(!Comparison::new("z", 0.0, 5.0, 0.1).holds());
    }

    #[test]
    fn paper_comparisons_cover_every_section() {
        let trace = ddos_sim::generate(&ddos_sim::SimConfig::small());
        let report = ddos_analytics::AnalysisReport::run(&trace.dataset);
        let sections = paper_comparisons(&trace, &report);
        // Every major artifact family is represented.
        let titles: Vec<&str> = sections.iter().map(|(t, _)| t.as_str()).collect();
        for needle in [
            "Table II",
            "Table III",
            "Table IV",
            "Table V",
            "Table VI",
            "Fig. 2",
        ] {
            assert!(
                titles.iter().any(|t| t.contains(needle)),
                "missing section {needle}: {titles:?}"
            );
        }
        // Rows carry finite values and render.
        for (title, rows) in &sections {
            for r in rows {
                assert!(r.measured.is_finite(), "{title}: {}", r.what);
                assert!(r.paper.is_finite());
            }
            let md = render_markdown(title, rows);
            assert!(md.contains("| quantity |"));
        }
    }

    #[test]
    fn markdown_rendering() {
        let rows = vec![
            Comparison::new("attacks", 50_704.0, 50_704.0, 0.01),
            Comparison::new("cosine", 0.946, 0.918, 0.10),
        ];
        let md = render_markdown("Table IV", &rows);
        assert!(md.contains("### Table IV"));
        assert!(md.contains("| attacks | 50704 | 50704 | 0.0% | ok |"));
        assert!(md.contains("0.918"));
    }

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(5.0), "5");
        assert_eq!(trim_float(0.5), "0.500");
        assert_eq!(trim_float(-3.0), "-3");
    }
}
