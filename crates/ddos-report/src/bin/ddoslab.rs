//! `ddoslab` — the workbench CLI.
//!
//! ```text
//! ddoslab generate --scale 1.0 --seed 0xDD05EED --out trace.ddtl
//! ddoslab analyze trace.ddtl            # full report to stdout
//! ddoslab analyze trace.ddtl --json     # AnalysisReport as JSON
//! ddoslab analyze trace.ddtl --timings  # also print the span breakdown
//! ddoslab analyze trace.ddtl --telemetry-json t.json  # write RunTelemetry
//! ddoslab analyze trace.ddtl --epochs 8 # epoch-sharded engine, 8 epochs
//! ddoslab serve trace.ddtl --epochs 8   # snapshot service: append + query
//! ddoslab export-csv trace.ddtl out.csv # attack records as CSV
//! ddoslab import-csv raw.csv out.ddtl   # CSV (optionally unmerged) -> trace
//! ddoslab info trace.ddtl               # summary only
//! ```

use std::process::ExitCode;

use ddos_analytics::{Analysis, PipelineOptions};
use ddos_obs::{names, Obs};
use ddos_schema::{codec, csv, framed, Dataset, DatasetBuilder, IngestStats, Seconds, Window};
use ddos_serve::AnalysisService;
use ddos_sim::{generate, SimConfig};

/// On-disk encoding for trace output (`--format`).
#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    V1,
    V2,
}

impl TraceFormat {
    fn parse(s: &str) -> Result<TraceFormat, String> {
        match s {
            "v1" => Ok(TraceFormat::V1),
            "v2" => Ok(TraceFormat::V2),
            other => Err(format!("bad --format {other:?} (expected v1 or v2)")),
        }
    }

    fn encode(self, ds: &Dataset) -> Vec<u8> {
        match self {
            TraceFormat::V1 => codec::encode(ds).to_vec(),
            TraceFormat::V2 => framed::encode(ds).to_vec(),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("export-csv") => cmd_export_csv(&args[1..]),
        Some("import-csv") => cmd_import_csv(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_help();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?} (try `ddoslab help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ddoslab: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "ddoslab — botnet DDoS trace workbench\n\n\
         USAGE:\n\
         \x20 ddoslab generate [--scale F] [--seed N] [--no-snapshots]\n\
         \x20                 [--format v1|v2] --out FILE\n\
         \x20 ddoslab analyze FILE [--json] [--timings] [--telemetry-json FILE]\n\
         \x20                 [--epochs N]\n\
         \x20 ddoslab serve FILE [--epochs N] [--timings]\n\
         \x20 ddoslab export-csv FILE OUT.csv\n\
         \x20 ddoslab import-csv IN.csv OUT.ddtl [--merge-gap=SECONDS]\n\
         \x20                 [--format=v1|v2] [--timings]\n\
         \x20 ddoslab info FILE\n\n\
         Traces use the binary DDTL format: v1 (ddos_schema::codec) or the\n\
         framed v2 container (ddos_schema::framed — checksummed frames,\n\
         parallel decode). Readers accept both; writers default to v2.\n\
         `import-csv` applies the paper's §II-D record merging (default gap 60 s;\n\
         pass --merge-gap=0 to disable).\n\
         `analyze --epochs N` slices the trace into N epochs and folds\n\
         per-epoch contexts — byte-identical output, sharded build.\n\
         `serve` replays the trace through the snapshot service: each epoch\n\
         append publishes an immutable prefix-exact snapshot, and every\n\
         query answer is stamped with its epoch watermark."
    );
}

fn parse_seed(s: &str) -> Result<u64, String> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad seed {s:?}: {e}"))
    } else {
        s.parse().map_err(|e| format!("bad seed {s:?}: {e}"))
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let mut config = SimConfig::default();
    let mut out: Option<String> = None;
    let mut format = TraceFormat::V2;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                config.scale = it
                    .next()
                    .ok_or("--scale takes a value")?
                    .parse()
                    .map_err(|e| format!("bad scale: {e}"))?;
            }
            "--seed" => config.seed = parse_seed(it.next().ok_or("--seed takes a value")?)?,
            "--no-snapshots" => config.snapshots = false,
            "--out" => out = Some(it.next().ok_or("--out takes a value")?.clone()),
            "--format" => format = TraceFormat::parse(it.next().ok_or("--format takes a value")?)?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let out = out.ok_or("generate requires --out FILE")?;
    eprintln!(
        "generating trace (scale {}, seed {:#x})...",
        config.scale, config.seed
    );
    let trace = generate(&config);
    let bytes = format.encode(&trace.dataset);
    std::fs::write(&out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} attacks, {} bots, {} KiB",
        trace.dataset.len(),
        trace.dataset.bots().len(),
        bytes.len() / 1024
    );
    Ok(())
}

/// Memory-maps and decodes a trace (v1 serial or framed v2 parallel),
/// recording the ingest span and metrics into `obs`.
fn load_obs(path: &str, obs: &Obs) -> Result<(Dataset, IngestStats), String> {
    let _span = obs.span(names::INGEST_FRAME_DECODE);
    let (ds, stats) = Dataset::open_with_stats(path).map_err(|e| format!("loading {path}: {e}"))?;
    obs.gauge(names::INGEST_BYTES).set(stats.bytes as u64);
    obs.gauge(names::INGEST_WORKERS).set(stats.workers as u64);
    obs.histogram(names::INGEST_FRAMES)
        .record(stats.frames as u64);
    Ok((ds, stats))
}

fn load(path: &str) -> Result<Dataset, String> {
    load_obs(path, &Obs::disabled()).map(|(ds, _)| ds)
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("analyze requires a trace file")?;
    let json = args.iter().any(|a| a == "--json");
    let timings = args.iter().any(|a| a == "--timings");
    let telemetry_out = args
        .iter()
        .position(|a| a == "--telemetry-json")
        .map(|i| {
            args.get(i + 1)
                .filter(|a| !a.starts_with("--"))
                .cloned()
                .ok_or("--telemetry-json takes a file")
        })
        .transpose()?;
    let epochs: Option<usize> = args
        .iter()
        .position(|a| a == "--epochs")
        .map(|i| {
            args.get(i + 1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("--epochs takes a count")?
                .parse::<usize>()
                .map_err(|e| format!("bad epoch count: {e}"))
        })
        .transpose()?
        .filter(|&n| n > 0);
    let obs = Obs::enabled();
    let (ds, _) = load_obs(path, &obs)?;
    // Both paths share the recorder with the load above, so the
    // telemetry artifact carries the ingest span alongside the
    // analysis spans.
    let report = match epochs {
        // Ceiling-divide the window so N epochs tile it exactly.
        Some(n) => {
            let len = Seconds((ds.window().length().get() + n as i64 - 1) / n as i64);
            let len = Seconds(len.get().max(1));
            eprintln!("epoch engine: {n} epochs of {} s", len.get());
            Analysis::new(&ds).obs(&obs).epochs(len).run()
        }
        None => Analysis::new(&ds).obs(&obs).run(),
    };
    if timings {
        eprintln!("{}", report.telemetry.render());
    }
    if let Some(out) = &telemetry_out {
        let body = serde_json::to_string_pretty(&report.telemetry)
            .map_err(|e| format!("serializing telemetry: {e}"))?;
        std::fs::write(out, body).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    if json {
        let body = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("serializing report: {e}"))?;
        println!("{body}");
        return Ok(());
    }
    let m = report.summary.measured;
    println!("== {path} ==");
    println!(
        "{} attacks | {} bot IPs in {} countries | {} victims in {} countries",
        m.attacks, m.attackers.ips, m.attackers.countries, m.victims.ips, m.victims.countries
    );
    if let Some(d) = &report.durations {
        println!(
            "durations: mean {:.0}s median {:.0}s p80 {:.0}s",
            d.mean, d.median, d.p80
        );
    }
    if let Some((day, peak)) = report.daily.peak() {
        println!(
            "daily: mean {:.1}, peak {} on {}",
            report.daily.mean_per_day(),
            peak,
            report.daily.date_of(day)
        );
    }
    println!("top victim countries:");
    for (cc, n) in &report.overall_targets {
        println!("  {cc}: {n}");
    }
    println!("prediction (Table IV):");
    for row in &report.prediction.rows {
        println!("  {}: cosine {:.3}", row.family, row.forecast.eval.cosine);
    }
    println!(
        "collaborations: {} pairs, {} events; {} chains (longest {})",
        report.collaborations.pairs.len(),
        report.collaborations.events.len(),
        report.multistage.chains.len(),
        report.multistage.longest().map_or(0, |c| c.len())
    );
    if let Some(mean) = report.blacklist.mean_coverage() {
        println!("blacklist warm-up coverage: {mean:.3}");
    }
    Ok(())
}

/// Replays a trace through the snapshot service: one epoch append at a
/// time, answering a query after each publish so the output shows the
/// watermark advancing, then a final snapshot summary.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("serve requires a trace file")?;
    let timings = args.iter().any(|a| a == "--timings");
    let epochs: usize = args
        .iter()
        .position(|a| a == "--epochs")
        .map(|i| {
            args.get(i + 1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("--epochs takes a count")?
                .parse::<usize>()
                .map_err(|e| format!("bad epoch count: {e}"))
        })
        .transpose()?
        .filter(|&n| n > 0)
        .unwrap_or(8);
    let obs = Obs::enabled();
    let (ds, _) = load_obs(path, &obs)?;
    // Ceiling-divide the window so N epochs tile it exactly.
    let len = Seconds(((ds.window().length().get() + epochs as i64 - 1) / epochs as i64).max(1));
    let service = AnalysisService::new(&ds, PipelineOptions::default(), len, &obs);
    println!(
        "== serving {path}: {} epochs of {} s ==",
        service.epochs(),
        len.get()
    );
    while let Some(stats) = service.try_append().map_err(|e| e.to_string())? {
        let top = service
            .top_targets(3)
            .map(|a| {
                a.value
                    .iter()
                    .map(|(cc, n)| format!("{cc}:{n}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "  watermark {}/{} | epoch {}: +{} attacks, {} passes re-ran | top {top}",
            service.watermark(),
            service.epochs(),
            stats.epoch,
            stats.attacks,
            stats.reran.len()
        );
    }
    let snap = service
        .snapshot()
        .ok_or("service published no snapshot (empty trace?)")?;
    let report = &snap.report;
    println!(
        "== final snapshot (watermark {}/{}) ==",
        snap.watermark, snap.epochs
    );
    let m = report.summary.measured;
    println!(
        "{} attacks | {} bot IPs in {} countries | {} victims in {} countries",
        m.attacks, m.attackers.ips, m.attackers.countries, m.victims.ips, m.victims.countries
    );
    println!(
        "collaborations: {} pairs, {} events",
        report.collaborations.pairs.len(),
        report.collaborations.events.len()
    );
    if let Some(mean) = report.blacklist.mean_coverage() {
        println!("blacklist warm-up coverage: {mean:.3}");
    }
    if timings {
        eprintln!("{}", obs.finish(false).render());
    }
    Ok(())
}

fn cmd_export_csv(args: &[String]) -> Result<(), String> {
    let [path, out] = args else {
        return Err("export-csv requires IN.ddtl OUT.csv".into());
    };
    let ds = load(path)?;
    let body = csv::attacks_to_csv(ds.attacks());
    std::fs::write(out, &body).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}: {} attack rows", ds.len());
    Ok(())
}

fn cmd_import_csv(args: &[String]) -> Result<(), String> {
    let (paths, flags): (Vec<&String>, Vec<&String>) =
        args.iter().partition(|a| !a.starts_with("--"));
    let [input, output] = paths[..] else {
        return Err("import-csv requires IN.csv OUT.ddtl".into());
    };
    let mut merge_gap = Seconds(ddos_analytics::preprocess::MERGE_GAP_S);
    let mut format = TraceFormat::V2;
    let mut timings = false;
    for flag in flags.iter() {
        match flag.as_str() {
            "--merge-gap" => {
                return Err("--merge-gap takes a value: use --merge-gap=SECONDS".into());
            }
            other if other.starts_with("--merge-gap=") => {
                let v = other.trim_start_matches("--merge-gap=");
                merge_gap = Seconds(v.parse().map_err(|e| format!("bad gap: {e}"))?);
            }
            other if other.starts_with("--format=") => {
                format = TraceFormat::parse(other.trim_start_matches("--format="))?;
            }
            "--timings" => timings = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let text = std::fs::read_to_string(input).map_err(|e| format!("reading {input}: {e}"))?;
    let obs = Obs::enabled();
    let mut records = {
        let _span = obs.span(names::INGEST_CSV_PARSE);
        csv::attacks_from_csv_chunked(&text).map_err(|e| e.to_string())?
    };
    obs.histogram(names::INGEST_CSV_ROWS)
        .record(records.len() as u64);
    let raw = records.len();
    if merge_gap.get() > 0 {
        records = ddos_analytics::preprocess::merge_attack_records(records, merge_gap);
    }
    let (start, end) = records.iter().fold((i64::MAX, i64::MIN), |(s, e), a| {
        (s.min(a.start.unix()), e.max(a.end.unix() + 1))
    });
    let window = if records.is_empty() {
        Window::PAPER
    } else {
        Window::new(ddos_schema::Timestamp(start), ddos_schema::Timestamp(end))
            .map_err(|e| e.to_string())?
    };
    let mut builder = DatasetBuilder::new(window);
    let merged = records.len();
    builder.extend_attacks(records).map_err(|e| e.to_string())?;
    let ds = builder.build().map_err(|e| e.to_string())?;
    let bytes = format.encode(&ds);
    std::fs::write(output, &bytes).map_err(|e| format!("writing {output}: {e}"))?;
    if timings {
        eprintln!("{}", obs.finish(false).render());
    }
    println!(
        "imported {raw} rows -> {merged} attacks (merge gap {}s); wrote {output}",
        merge_gap.get()
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("info requires a trace file")?;
    let (ds, stats) = load_obs(path, &Obs::disabled())?;
    let s = ds.summary();
    println!("{path}:");
    println!(
        "  format     v{} ({} frames, {} KiB)",
        stats.version,
        stats.frames,
        stats.bytes / 1024
    );
    println!("  window     {} -> {}", ds.window().start, ds.window().end);
    println!("  attacks    {}", s.attacks);
    println!(
        "  botnets    {} attacking / {} recorded",
        s.botnets,
        ds.botnets().len()
    );
    println!(
        "  attackers  {} IPs, {} cities, {} countries, {} orgs, {} ASNs",
        s.attackers.ips,
        s.attackers.cities,
        s.attackers.countries,
        s.attackers.organizations,
        s.attackers.asns
    );
    println!(
        "  victims    {} IPs, {} cities, {} countries, {} orgs, {} ASNs",
        s.victims.ips,
        s.victims.cities,
        s.victims.countries,
        s.victims.organizations,
        s.victims.asns
    );
    println!("  snapshots  {} families", ds.snapshot_families().count());
    Ok(())
}
