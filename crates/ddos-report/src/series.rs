//! Plot-ready data series.
//!
//! Every paper figure is reduced to one or more named series of `(x, y)`
//! points, rendered as tab-separated values that gnuplot, matplotlib, or
//! a spreadsheet ingest directly.

use std::fmt::Write as _;

/// One named data series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name (becomes the column header).
    pub name: String,
    /// `(x, y)` points in plot order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from points.
    pub fn new<S: Into<String>>(name: S, points: Vec<(f64, f64)>) -> Series {
        Series {
            name: name.into(),
            points,
        }
    }

    /// Creates a series from y values indexed 0, 1, 2, …
    pub fn from_values<S: Into<String>>(name: S, values: &[f64]) -> Series {
        Series {
            name: name.into(),
            points: values
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as f64, v))
                .collect(),
        }
    }

    /// Downsamples to at most `max` points (uniform stride), preserving
    /// the final point — keeps `repro` output readable for long series.
    pub fn downsample(mut self, max: usize) -> Series {
        if max == 0 || self.points.len() <= max {
            return self;
        }
        let stride = self.points.len().div_ceil(max);
        let last = *self.points.last().expect("non-empty");
        self.points = self.points.iter().copied().step_by(stride).collect();
        if self.points.last() != Some(&last) {
            self.points.push(last);
        }
        self
    }

    /// Renders one series as two TSV columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# x\t{}", self.name);
        for &(x, y) in &self.points {
            let _ = writeln!(out, "{x}\t{y}");
        }
        out
    }
}

/// Renders several series side by side (shared x per row is NOT assumed;
/// each series is emitted as its own block, gnuplot `index` style).
pub fn render_blocks(series: &[Series]) -> String {
    let mut out = String::new();
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&s.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_tsv() {
        let s = Series::new("cdf", vec![(1.0, 0.5), (2.0, 1.0)]);
        let out = s.render();
        assert!(out.starts_with("# x\tcdf\n"));
        assert!(out.contains("1\t0.5"));
        assert!(out.contains("2\t1"));
    }

    #[test]
    fn from_values_indexes() {
        let s = Series::from_values("v", &[10.0, 20.0]);
        assert_eq!(s.points, vec![(0.0, 10.0), (1.0, 20.0)]);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let s = Series::from_values("v", &(0..100).map(|i| i as f64).collect::<Vec<_>>());
        let d = s.downsample(10);
        assert!(d.points.len() <= 11);
        assert_eq!(d.points.first(), Some(&(0.0, 0.0)));
        assert_eq!(d.points.last(), Some(&(99.0, 99.0)));
        // No-ops.
        let tiny = Series::from_values("v", &[1.0]).downsample(10);
        assert_eq!(tiny.points.len(), 1);
    }

    #[test]
    fn blocks_are_separated() {
        let a = Series::new("a", vec![(0.0, 0.0)]);
        let b = Series::new("b", vec![(1.0, 1.0)]);
        let out = render_blocks(&[a, b]);
        assert_eq!(out.matches("# x").count(), 2);
        assert!(out.contains("\n\n"));
    }
}
