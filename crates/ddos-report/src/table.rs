//! Monospace table rendering.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut Table {
        let mut row: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        row.resize(self.headers.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let _ = write!(line, " {cell:w$} |", w = w);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<1$}|", "", w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "count"]);
        t.row(&["alpha", "1"]);
        t.row(&["b", "12345"]);
        let out = t.render();
        assert!(out.contains("## Demo"));
        let lines: Vec<&str> = out.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        // All body lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
        assert!(out.contains("| alpha | 1     |"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new("", &["a", "b", "c"]);
        t.row(&["x"]);
        let out = t.render();
        assert!(!out.contains("## "));
        assert!(out.lines().count() == 3);
    }

    #[test]
    fn mixed_types_via_to_string() {
        let mut t = Table::new("t", &["k", "v"]);
        t.row(&[format!("{}", 1), format!("{:.2}", 2.5)]);
        assert!(t.render().contains("2.50"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
