//! Satellite: metric merge is a commutative monoid.
//!
//! Sharded telemetry (parallel workers, future distributed runs) is only
//! sound if merging snapshots is order-free: associative, commutative,
//! with the empty snapshot as identity. These property tests pin that
//! down for histograms and for whole metrics snapshots, and check that
//! a merged histogram equals the histogram of the concatenated samples
//! (merge loses nothing binning kept).

use ddos_obs::{CounterEntry, GaugeEntry, Histogram, HistogramSnapshot, MetricsSnapshot};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

fn snapshot_of(
    counters: &[(u8, u64)],
    gauges: &[(u8, u64)],
    hists: &[(u8, Vec<u64>)],
) -> MetricsSnapshot {
    // Names drawn from a tiny alphabet so merges frequently collide.
    let name = |k: u8| format!("m{}", k % 4);
    let mut s = MetricsSnapshot::default();
    for &(k, v) in counters {
        let n = name(k);
        match s.counters.iter_mut().find(|e| e.name == n) {
            Some(e) => e.value += v,
            None => s.counters.push(CounterEntry { name: n, value: v }),
        }
    }
    s.counters.sort_by(|a, b| a.name.cmp(&b.name));
    for &(k, v) in gauges {
        let n = name(k);
        match s.gauges.iter_mut().find(|e| e.name == n) {
            Some(e) => e.value = e.value.max(v),
            None => s.gauges.push(GaugeEntry { name: n, value: v }),
        }
    }
    s.gauges.sort_by(|a, b| a.name.cmp(&b.name));
    for (k, values) in hists {
        let n = name(*k);
        let h = hist_of(values);
        match s.histograms.iter_mut().find(|e| e.name == n) {
            Some(e) => e.histogram.merge(&h),
            None => s.histograms.push(ddos_obs::HistogramEntry {
                name: n,
                histogram: h,
            }),
        }
    }
    s.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    s
}

fn snap_merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative(
        xs in proptest::collection::vec(any::<u64>(), 0..64),
        ys in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn histogram_merge_is_associative(
        xs in proptest::collection::vec(any::<u64>(), 0..48),
        ys in proptest::collection::vec(any::<u64>(), 0..48),
        zs in proptest::collection::vec(any::<u64>(), 0..48),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn histogram_merge_equals_concatenated_recording(
        xs in proptest::collection::vec(any::<u64>(), 0..64),
        ys in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let both: Vec<u64> = xs.iter().chain(&ys).copied().collect();
        prop_assert_eq!(merged(&hist_of(&xs), &hist_of(&ys)), hist_of(&both));
    }

    #[test]
    fn histogram_empty_is_identity(
        xs in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let a = hist_of(&xs);
        let e = HistogramSnapshot::default();
        prop_assert_eq!(merged(&a, &e), a.clone());
        prop_assert_eq!(merged(&e, &a), a);
    }

    #[test]
    fn snapshot_merge_is_commutative_and_associative(
        ca in proptest::collection::vec((any::<u8>(), 0u64..1 << 40), 0..8),
        cb in proptest::collection::vec((any::<u8>(), 0u64..1 << 40), 0..8),
        cc in proptest::collection::vec((any::<u8>(), 0u64..1 << 40), 0..8),
        ga in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..8),
        gb in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..8),
        ha in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u64>(), 0..12)), 0..4),
        hb in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u64>(), 0..12)), 0..4),
    ) {
        let a = snapshot_of(&ca, &ga, &ha);
        let b = snapshot_of(&cb, &gb, &hb);
        let c = snapshot_of(&cc, &[], &[]);
        prop_assert_eq!(snap_merged(&a, &b), snap_merged(&b, &a));
        prop_assert_eq!(
            snap_merged(&snap_merged(&a, &b), &c),
            snap_merged(&a, &snap_merged(&b, &c))
        );
        let e = MetricsSnapshot::default();
        prop_assert_eq!(snap_merged(&a, &e), a.clone());
        prop_assert_eq!(snap_merged(&e, &a), a);
    }
}
