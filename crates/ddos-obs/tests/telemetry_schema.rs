//! Satellite: the telemetry JSON shape is pinned by snapshot.
//!
//! Downstream tooling (the CI artifact, perf-comparison scripts) parses
//! this JSON; a field rename or reshuffle is a breaking change and must
//! come with a `TELEMETRY_SCHEMA_VERSION` bump. The snapshot below is
//! the canonical serialization of a hand-built `RunTelemetry` — if this
//! test fails, either revert the shape change or bump the version and
//! update the snapshot *and* the consumers.

use ddos_obs::{
    CounterEntry, GaugeEntry, HistogramBin, HistogramEntry, HistogramSnapshot, MetricsSnapshot,
    Obs, RunTelemetry, SpanRecord, TELEMETRY_SCHEMA_VERSION,
};

fn sample() -> RunTelemetry {
    RunTelemetry {
        schema_version: TELEMETRY_SCHEMA_VERSION,
        parallel: true,
        threads: 4,
        total_us: 1500,
        spans: vec![
            SpanRecord {
                path: "run".into(),
                start_us: 0,
                end_us: 1500,
            },
            SpanRecord {
                path: "run/context".into(),
                start_us: 10,
                end_us: 600,
            },
        ],
        metrics: MetricsSnapshot {
            counters: vec![CounterEntry {
                name: "geo/dispersion_snapshots".into(),
                value: 42,
            }],
            gauges: vec![GaugeEntry {
                name: "context/attacks".into(),
                value: 7,
            }],
            histograms: vec![HistogramEntry {
                name: "scheduler/wait_us".into(),
                histogram: HistogramSnapshot {
                    count: 2,
                    sum: 9,
                    min: 3,
                    max: 6,
                    bins: vec![
                        HistogramBin {
                            lo: 2,
                            hi: 3,
                            count: 1,
                        },
                        HistogramBin {
                            lo: 4,
                            hi: 7,
                            count: 1,
                        },
                    ],
                },
            }],
        },
    }
}

/// The committed canonical JSON for [`sample`]. Field order follows
/// declaration order in the Rust types; any diff here is a schema
/// change.
const GOLDEN: &str = concat!(
    r#"{"schema_version":1,"parallel":true,"threads":4,"total_us":1500,"#,
    r#""spans":[{"path":"run","start_us":0,"end_us":1500},"#,
    r#"{"path":"run/context","start_us":10,"end_us":600}],"#,
    r#""metrics":{"counters":[{"name":"geo/dispersion_snapshots","value":42}],"#,
    r#""gauges":[{"name":"context/attacks","value":7}],"#,
    r#""histograms":[{"name":"scheduler/wait_us","histogram":"#,
    r#"{"count":2,"sum":9,"min":3,"max":6,"#,
    r#""bins":[{"lo":2,"hi":3,"count":1},{"lo":4,"hi":7,"count":1}]}}]}}"#
);

#[test]
fn telemetry_json_shape_is_stable() {
    let json = serde_json::to_string(&sample()).expect("telemetry serializes");
    assert_eq!(
        json, GOLDEN,
        "telemetry JSON shape changed — bump TELEMETRY_SCHEMA_VERSION and update consumers"
    );
}

#[test]
fn telemetry_json_round_trips() {
    let t = sample();
    let json = serde_json::to_string(&t).unwrap();
    let back: RunTelemetry = serde_json::from_str(&json).expect("telemetry deserializes");
    assert_eq!(back, t);
}

#[test]
fn recorded_telemetry_matches_the_pinned_key_set() {
    // A *real* recording (not a hand-built value) must serialize with
    // exactly the pinned top-level keys, in order.
    let obs = Obs::enabled();
    {
        let _g = obs.span("run");
    }
    obs.counter("c").inc();
    obs.gauge("g").set(1);
    obs.histogram("h").record(2);
    let json = serde_json::to_string(&obs.finish(false)).unwrap();
    for key in [
        "\"schema_version\":",
        "\"parallel\":",
        "\"threads\":",
        "\"total_us\":",
        "\"spans\":",
        "\"metrics\":",
        "\"counters\":",
        "\"gauges\":",
        "\"histograms\":",
        "\"path\":",
        "\"start_us\":",
        "\"end_us\":",
    ] {
        assert!(json.contains(key), "telemetry JSON lost key {key}: {json}");
    }
    let version_first =
        json.starts_with(&format!("{{\"schema_version\":{TELEMETRY_SCHEMA_VERSION}"));
    assert!(
        version_first,
        "schema_version must lead the document: {json}"
    );
}
