//! Stable content digests for golden-report conformance.
//!
//! FNV-1a over the serialized report bytes: no dependencies, endianness-
//! free (it consumes bytes), and stable across platforms and Rust
//! versions — exactly what a committed golden digest needs. This is a
//! *conformance fingerprint*, not a cryptographic hash; the threat model
//! is accidental divergence between pipeline variants, not adversaries.

/// 64-bit FNV-1a of `bytes`.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// [`fnv1a_64`] rendered as the `fnv1a64:<16 hex digits>` form the
/// golden files commit.
pub fn fnv1a_64_hex(bytes: &[u8]) -> String {
    format!("fnv1a64:{:016x}", fnv1a_64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_form_is_stable() {
        assert_eq!(fnv1a_64_hex(b""), "fnv1a64:cbf29ce484222325");
        assert_eq!(fnv1a_64_hex(b"foobar"), "fnv1a64:85944171f73967e8");
    }

    #[test]
    fn digest_separates_close_inputs() {
        assert_ne!(fnv1a_64(b"report"), fnv1a_64(b"reporT"));
    }
}
