//! Canonical metric and span names shared across crates.
//!
//! The ingest layer lives in `ddos-schema`, which stays free of an
//! `ddos-obs` dependency (telemetry must never be able to perturb
//! decoding); loaders (`ddoslab`, `repro`) record ingest telemetry
//! themselves from the `IngestStats` the decoders return, under the
//! names pinned here so dashboards and snapshot tests agree on
//! spelling.

/// Span covering one binary trace decode (v1 serial or v2 framed).
pub const INGEST_FRAME_DECODE: &str = "ingest/frame_decode";
/// Gauge: size in bytes of the last binary trace ingested.
pub const INGEST_BYTES: &str = "ingest/bytes";
/// Histogram: frames per decoded binary trace (1 for v1 inputs).
pub const INGEST_FRAMES: &str = "ingest/frames";
/// Gauge: decode workers used by the last binary trace ingest.
pub const INGEST_WORKERS: &str = "ingest/workers";
/// Span covering one CSV attack import.
pub const INGEST_CSV_PARSE: &str = "ingest/csv_parse";
/// Histogram: attack rows per CSV import.
pub const INGEST_CSV_ROWS: &str = "ingest/csv_rows";
/// Counter: faults injected by the `ddos-failpoints` seam that the
/// pipeline surfaced as `Err` (testkit fault suites assert this moves
/// in lockstep with the errors they observe).
pub const FAULTS_INJECTED: &str = "faults/injected";
/// Counter: seeded soak rounds completed by the conformance driver.
pub const SOAK_ROUNDS: &str = "soak/rounds";
/// Histogram: wall micros one variant cell took inside a soak round.
pub const SOAK_CELL_US: &str = "soak/cell_us";
/// Span covering one epoch append on the serve writer path (epoch
/// build + merge + dirtied-pass re-run + snapshot publish).
pub const SERVE_APPEND: &str = "serve/append";
/// Span covering one snapshot query on the serve read path.
pub const SERVE_QUERY: &str = "serve/query";
/// Counter: queries answered from a published snapshot.
pub const SERVE_QUERIES_ANSWERED: &str = "serve/queries_answered";
/// Counter: appends the service rejected because an injected fault
/// surfaced; the published snapshot is untouched by these.
pub const SERVE_APPEND_FAULTS: &str = "serve/append_faults";
/// Gauge: high-water mark of concurrently in-flight queries.
pub const SERVE_INFLIGHT: &str = "serve/inflight";
/// Gauge: the epoch watermark of the currently published snapshot.
pub const SERVE_WATERMARK: &str = "serve/watermark";
/// Histogram: wall micros per snapshot query.
pub const SERVE_QUERY_US: &str = "serve/query_us";
/// Histogram: wall micros per epoch append.
pub const SERVE_APPEND_US: &str = "serve/append_us";
