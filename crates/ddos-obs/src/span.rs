//! Hierarchical wall-clock spans.
//!
//! A span is a named interval of a run, identified by a `/`-separated
//! path: `context/bot_table` is a child of `context`, which is a child
//! of the root span `run`. Hierarchy lives in the path itself — there is
//! no registration step and no tree structure to keep in sync across
//! threads; nesting is recovered from the paths when rendering.
//!
//! All times are microsecond offsets from the run's start, so a span set
//! is self-contained and serializable without wall-clock anchors.

use serde::{Deserialize, Serialize};

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// `/`-separated hierarchical name (`passes/dispersion`).
    pub path: String,
    /// Start, microseconds since the run began.
    pub start_us: u64,
    /// End, microseconds since the run began.
    pub end_us: u64,
}

impl SpanRecord {
    /// The span's duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Nesting depth: number of `/` separators in the path.
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }

    /// Whether `other` is a strict path descendant of this span
    /// (`context` contains `context/bot_table`).
    pub fn contains_path(&self, other: &SpanRecord) -> bool {
        other.path.len() > self.path.len()
            && other.path.starts_with(&self.path)
            && other.path.as_bytes()[self.path.len()] == b'/'
    }

    /// The last path component.
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// Orders spans deterministically for serialization: by start time,
/// then longest-first (so parents precede the children they enclose),
/// then by path.
pub(crate) fn sort_spans(spans: &mut [SpanRecord]) {
    spans.sort_by(|a, b| {
        a.start_us
            .cmp(&b.start_us)
            .then(b.end_us.cmp(&a.end_us))
            .then(a.path.cmp(&b.path))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(path: &str, start_us: u64, end_us: u64) -> SpanRecord {
        SpanRecord {
            path: path.to_string(),
            start_us,
            end_us,
        }
    }

    #[test]
    fn duration_depth_and_name() {
        let s = span("context/bot_table", 10, 35);
        assert_eq!(s.duration_us(), 25);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.name(), "bot_table");
        assert_eq!(span("run", 0, 1).depth(), 0);
        assert_eq!(span("run", 0, 1).name(), "run");
    }

    #[test]
    fn path_containment_requires_separator() {
        let parent = span("context", 0, 100);
        assert!(parent.contains_path(&span("context/bot_table", 1, 2)));
        assert!(!parent.contains_path(&span("context", 1, 2)), "not strict");
        assert!(
            !parent.contains_path(&span("contexts", 1, 2)),
            "prefix only"
        );
        assert!(!parent.contains_path(&span("passes/daily", 1, 2)));
    }

    #[test]
    fn sort_puts_parents_before_children() {
        let mut spans = vec![span("run/b", 5, 9), span("run", 0, 10), span("run/a", 0, 4)];
        sort_spans(&mut spans);
        let paths: Vec<&str> = spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["run", "run/a", "run/b"]);
    }
}
