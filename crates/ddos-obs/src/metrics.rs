//! The metrics layer: named counters, gauges, and mergeable histograms.
//!
//! Live metrics ([`Counter`], [`Gauge`], [`Histogram`]) record through
//! relaxed atomics — cheap enough for the pipeline's parallel paths —
//! and are handed out as [`std::sync::Arc`] handles by a
//! [`MetricsRegistry`], so every thread that asks for a name shares one
//! instance. A finished run snapshots the registry into the plain
//! [`MetricsSnapshot`] value types, which serialize in sorted name order
//! and merge with associative, commutative semantics:
//!
//! * counters **add**,
//! * gauges take the **maximum**,
//! * histograms add **bin-wise** (same deterministic binning on both
//!   sides, so bins align by construction).
//!
//! Histogram binning is deterministic power-of-two bucketing: value `0`
//! lands in its own bucket, value `v > 0` in bucket
//! `64 - v.leading_zeros()` (covering `[2^(k-1), 2^k)`). Two runs that
//! record the same values always produce the same bins, which is what
//! makes committed telemetry snapshots meaningful.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// A monotonically increasing count. Relaxed atomic add.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-written point-in-time value (workers racing `set` keep one of
/// the written values; use [`Gauge::record_max`] for a deterministic
/// high-water mark).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger.
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket index of a value: `0` for zero, else `64 - leading_zeros`
/// (bucket `k ≥ 1` covers `[2^(k-1), 2^k)`).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Lower bound of a bucket.
fn bucket_lo(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

/// Upper (inclusive) bound of a bucket.
fn bucket_hi(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// Number of buckets (`0` plus one per bit position).
const NUM_BUCKETS: usize = 65;

/// A histogram over `u64` values with deterministic power-of-two
/// binning. Recording is three relaxed atomic adds plus two atomic
/// min/max updates — safe and cheap from worker threads.
#[derive(Debug)]
pub struct Histogram {
    bins: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            bins: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.bins[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freezes the live histogram into a plain snapshot (only non-empty
    /// bins are kept, in ascending bucket order).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let bins = self
            .bins
            .iter()
            .enumerate()
            .filter_map(|(k, bin)| {
                let n = bin.load(Ordering::Relaxed);
                (n > 0).then(|| HistogramBin {
                    lo: bucket_lo(k),
                    hi: bucket_hi(k),
                    count: n,
                })
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            bins,
        }
    }
}

/// One non-empty histogram bucket: `count` values fell in `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBin {
    /// Inclusive lower bound of the bucket.
    pub lo: u64,
    /// Inclusive upper bound of the bucket.
    pub hi: u64,
    /// Values recorded in the bucket.
    pub count: u64,
}

/// A frozen histogram. Merge is bin-wise addition — associative and
/// commutative, with the empty snapshot as identity (the property tests
/// in `tests/merge_props.rs` pin this down).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping is the caller's concern).
    pub sum: u64,
    /// Smallest recorded value (`0` when empty).
    pub min: u64,
    /// Largest recorded value (`0` when empty).
    pub max: u64,
    /// Non-empty buckets, ascending by `lo`.
    pub bins: Vec<HistogramBin>,
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one (bin-wise add; min/max and
    /// count/sum fold accordingly).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        let mut merged: Vec<HistogramBin> = Vec::with_capacity(self.bins.len() + other.bins.len());
        let (mut i, mut j) = (0, 0);
        while i < self.bins.len() || j < other.bins.len() {
            match (self.bins.get(i), other.bins.get(j)) {
                (Some(a), Some(b)) if a.lo == b.lo => {
                    merged.push(HistogramBin {
                        lo: a.lo,
                        hi: a.hi,
                        count: a.count + b.count,
                    });
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a.lo < b.lo => {
                    merged.push(*a);
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    merged.push(*b);
                    j += 1;
                }
                (Some(a), None) => {
                    merged.push(*a);
                    i += 1;
                }
                (None, Some(b)) => {
                    merged.push(*b);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.bins = merged;
    }

    /// Mean of the recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// One named counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Metric name.
    pub name: String,
    /// Final count.
    pub value: u64,
}

/// One named gauge in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Metric name.
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// One named histogram in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Metric name.
    pub name: String,
    /// The frozen histogram.
    pub histogram: HistogramSnapshot,
}

/// All of a run's metrics, frozen, each kind sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, ascending by name.
    pub counters: Vec<CounterEntry>,
    /// Gauges, ascending by name.
    pub gauges: Vec<GaugeEntry>,
    /// Histograms, ascending by name.
    pub histograms: Vec<HistogramEntry>,
}

/// Merges two sorted-by-name entry lists with `combine` on name hits.
fn merge_entries<T: Clone>(
    a: &mut Vec<T>,
    b: &[T],
    name: impl Fn(&T) -> &str,
    combine: impl Fn(&mut T, &T),
) {
    let mut merged: Vec<T> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get_mut(i), b.get(j)) {
            (Some(x), Some(y)) if name(x) == name(y) => {
                let mut x = x.clone();
                combine(&mut x, y);
                merged.push(x);
                i += 1;
                j += 1;
            }
            (Some(x), Some(y)) if name(x) < name(y) => {
                merged.push(x.clone());
                i += 1;
            }
            (Some(_), Some(y)) => {
                merged.push(y.clone());
                j += 1;
            }
            (Some(x), None) => {
                merged.push(x.clone());
                i += 1;
            }
            (None, Some(y)) => {
                merged.push(y.clone());
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    *a = merged;
}

impl MetricsSnapshot {
    /// Merges another snapshot into this one by metric name: counters
    /// add, gauges take the maximum, histograms merge bin-wise. All
    /// three rules are associative and commutative, so merging shards of
    /// a distributed run is order-free.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        merge_entries(
            &mut self.counters,
            &other.counters,
            |e| &e.name,
            |x, y| x.value += y.value,
        );
        merge_entries(
            &mut self.gauges,
            &other.gauges,
            |e| &e.name,
            |x, y| x.value = x.value.max(y.value),
        );
        merge_entries(
            &mut self.histograms,
            &other.histograms,
            |e| &e.name,
            |x, y| x.histogram.merge(&y.histogram),
        );
    }

    /// Looks up a counter's value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value)
    }

    /// Looks up a gauge's value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|e| e.name == name).map(|e| e.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.histogram)
    }

    /// Whether no metric was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// The live registry: hands out shared handles by name, freezes into a
/// [`MetricsSnapshot`]. Handle lookup takes a mutex — do it once per
/// name outside hot loops and record through the returned [`Arc`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// The shared counter registered under `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .expect("metrics registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    /// The shared gauge registered under `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .expect("metrics registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    /// The shared histogram registered under `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("metrics registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    /// Freezes every registered metric, sorted by name (the `BTreeMap`
    /// iteration order).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(&name, c)| CounterEntry {
                    name: name.to_string(),
                    value: c.get(),
                })
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(&name, g)| GaugeEntry {
                    name: name.to_string(),
                    value: g.get(),
                })
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(&name, h)| HistogramEntry {
                    name: name.to_string(),
                    histogram: h.snapshot(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_consistent() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let k = bucket_of(v);
            assert!(
                bucket_lo(k) <= v && v <= bucket_hi(k),
                "value {v} bucket {k}"
            );
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_snapshot_carries_stats_and_bins() {
        let h = Histogram::default();
        for v in [0u64, 1, 5, 5, 900] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 911);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 900);
        // 0 → bucket 0; 1 → bucket 1; 5,5 → bucket [4,7]; 900 → [512,1023].
        assert_eq!(s.bins.len(), 4);
        assert_eq!(
            s.bins[2],
            HistogramBin {
                lo: 4,
                hi: 7,
                count: 2
            }
        );
        assert!(s.bins.windows(2).all(|w| w[0].lo < w[1].lo));
        assert_eq!(s.mean(), Some(911.0 / 5.0));
    }

    #[test]
    fn empty_histogram_snapshot_is_identity() {
        let s = Histogram::default().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        let h = Histogram::default();
        h.record(7);
        let mut a = h.snapshot();
        let b = a.clone();
        a.merge(&s);
        assert_eq!(a, b);
        let mut e = HistogramSnapshot::default();
        e.merge(&b);
        assert_eq!(e, b);
    }

    #[test]
    fn registry_shares_handles_and_snapshots_sorted() {
        let reg = MetricsRegistry::default();
        reg.counter("b/second").add(2);
        reg.counter("a/first").inc();
        reg.counter("b/second").add(3);
        reg.gauge("g").set(7);
        reg.gauge("g").record_max(5);
        reg.histogram("h").record(10);
        let s = reg.snapshot();
        assert_eq!(s.counters.len(), 2);
        assert_eq!(s.counters[0].name, "a/first");
        assert_eq!(s.counter("b/second"), Some(5));
        assert_eq!(s.gauge("g"), Some(7), "record_max must not lower a gauge");
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert!(!s.is_empty());
        assert!(MetricsSnapshot::default().is_empty());
    }

    #[test]
    fn counters_add_across_threads() {
        let reg = MetricsRegistry::default();
        let c = reg.counter("x");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("x"), Some(4000));
    }
}
