//! `ddos-obs` — the pipeline's observability subsystem.
//!
//! The paper's headline numbers (50,704 attacks, 674 botnets, the
//! Table IV ARIMA errors) stay trustworthy across hot-path rewrites only
//! if every run carries its own instrumentation. This crate provides the
//! three layers the analysis pipeline threads through itself:
//!
//! * [`metrics`] — a registry of named counters, gauges, and mergeable
//!   histograms with deterministic power-of-two binning. Recording is a
//!   relaxed atomic add, safe to call from the scheduler's worker
//!   threads; snapshots serialize in sorted name order.
//! * [`span`] — hierarchical wall-clock spans, identified by
//!   `/`-separated paths (`context/bot_table`, `passes/dispersion`).
//!   Finished spans are pushed under a mutex — one push per span, never
//!   per record — so parallel paths stay cheap.
//! * [`telemetry`] — [`Obs`], the live recorder handed through a run,
//!   and [`RunTelemetry`], the finished machine-readable artifact
//!   (`repro --telemetry-json`, `ddoslab analyze --telemetry-json`).
//!
//! The cardinal invariant: **recording telemetry never perturbs the
//! analysis**. The recorder is write-only from the pipeline's point of
//! view — no pass ever reads it — so a run with telemetry disabled
//! produces byte-identical report output (the golden-report conformance
//! suite in `tests/golden_report.rs` enforces this).
//!
//! [`digest`] rides along: the stable FNV-1a content digest the
//! conformance suite pins report bytes with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod metrics;
pub mod names;
pub mod span;
pub mod telemetry;

pub use digest::fnv1a_64_hex;
pub use metrics::{
    Counter, CounterEntry, Gauge, GaugeEntry, Histogram, HistogramBin, HistogramEntry,
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use span::SpanRecord;
pub use telemetry::{Obs, RunTelemetry, SpanGuard, TELEMETRY_SCHEMA_VERSION};
