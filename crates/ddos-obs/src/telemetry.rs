//! The live recorder ([`Obs`]) and the finished artifact
//! ([`RunTelemetry`]).
//!
//! One [`Obs`] lives for exactly one pipeline run. Stages open spans
//! with [`Obs::span`] (RAII, records on drop) or record explicit
//! intervals with [`Obs::record_span`] from worker threads; counters,
//! gauges, and histograms come from the embedded
//! [`MetricsRegistry`]. [`Obs::finish`] freezes everything into a
//! [`RunTelemetry`], the JSON artifact `repro --telemetry-json` and
//! `ddoslab analyze --telemetry-json` emit.
//!
//! A disabled recorder ([`Obs::disabled`]) accepts the same calls and
//! records nothing, so instrumented code never branches on a telemetry
//! flag — and since no pipeline stage ever *reads* the recorder, report
//! bytes are identical either way (enforced by the conformance suite).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use crate::span::{sort_spans, SpanRecord};

/// Version of the telemetry JSON shape. Bump on any breaking change to
/// the serialized structure (the snapshot test pins the current shape).
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// The live telemetry recorder for one pipeline run.
#[derive(Debug)]
pub struct Obs {
    enabled: bool,
    t0: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    metrics: MetricsRegistry,
}

impl Obs {
    /// A recording observer anchored at "now".
    pub fn enabled() -> Obs {
        Obs {
            enabled: true,
            t0: Instant::now(),
            spans: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::default(),
        }
    }

    /// A no-op observer: same API, records nothing, and
    /// [`Obs::finish`] returns an empty [`RunTelemetry`].
    pub fn disabled() -> Obs {
        Obs {
            enabled: false,
            ..Obs::enabled()
        }
    }

    /// Whether this observer records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Microseconds since the run began.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Opens a span that records itself when dropped.
    pub fn span(&self, path: impl Into<String>) -> SpanGuard<'_> {
        SpanGuard {
            obs: self,
            path: self.enabled.then(|| path.into()),
            start_us: self.now_us(),
        }
    }

    /// Records a finished span with explicit offsets (the worker-thread
    /// path: measure locally, push once on completion).
    pub fn record_span(&self, path: impl Into<String>, start_us: u64, end_us: u64) {
        if !self.enabled {
            return;
        }
        self.spans
            .lock()
            .expect("span sink poisoned")
            .push(SpanRecord {
                path: path.into(),
                start_us,
                end_us,
            });
    }

    /// The shared counter named `name` (no-op-ish when disabled: the
    /// handle works but is never snapshotted).
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        self.metrics.counter(name)
    }

    /// The shared gauge named `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        self.metrics.gauge(name)
    }

    /// The shared histogram named `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.metrics.histogram(name)
    }

    /// Freezes the run into its telemetry artifact. `parallel` is
    /// stamped into the output so a reader knows which scheduler
    /// produced the spans.
    pub fn finish(&self, parallel: bool) -> RunTelemetry {
        if !self.enabled {
            return RunTelemetry::default();
        }
        let mut spans = std::mem::take(&mut *self.spans.lock().expect("span sink poisoned"));
        sort_spans(&mut spans);
        RunTelemetry {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            parallel,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            total_us: spans.iter().map(|s| s.end_us).max().unwrap_or(0),
            spans,
            metrics: self.metrics.snapshot(),
        }
    }
}

/// RAII span: records `[open, drop]` against the observer it came from.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    path: Option<String>,
    start_us: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            let end = self.obs.now_us();
            self.obs.record_span(path, self.start_us, end);
        }
    }
}

/// A finished run's telemetry: every span and metric, machine-readable.
///
/// This is run *metadata* — machine-dependent wall-clock and scheduler
/// behavior — so the pipeline attaches it outside the serialized report
/// (`#[serde(skip)]` on the report field), keeping parallel and serial
/// report bytes identical while the telemetry captures how the run
/// actually executed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunTelemetry {
    /// Shape version of this JSON document
    /// ([`TELEMETRY_SCHEMA_VERSION`]); `0` means "telemetry disabled".
    pub schema_version: u32,
    /// Whether the run used the parallel scheduler.
    pub parallel: bool,
    /// Available hardware parallelism at run time.
    pub threads: usize,
    /// End offset of the last span, microseconds.
    pub total_us: u64,
    /// Every recorded span, ordered start-time-major with parents before
    /// the children they enclose.
    pub spans: Vec<SpanRecord>,
    /// Every recorded metric, each kind sorted by name.
    pub metrics: MetricsSnapshot,
}

impl RunTelemetry {
    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.metrics.is_empty()
    }

    /// The spans under `prefix` (`prefix/x`, not `prefix` itself).
    pub fn spans_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| {
            s.path.len() > prefix.len() + 1
                && s.path.starts_with(prefix)
                && s.path.as_bytes()[prefix.len()] == b'/'
        })
    }

    /// The first span with exactly this path.
    pub fn span(&self, path: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Renders the span breakdown as an aligned text table (the
    /// `ddoslab analyze --timings` view), indented by nesting depth.
    pub fn render(&self) -> String {
        let mode = if self.parallel { "parallel" } else { "serial" };
        let mut out = format!("pipeline telemetry ({mode}, {} threads)\n", self.threads);
        out.push_str(&format!(
            "{:<42} {:>12} {:>12}\n",
            "span", "start_us", "dur_us"
        ));
        for s in &self.spans {
            let label = format!("{}{}", "  ".repeat(s.depth()), s.name());
            out.push_str(&format!(
                "{:<42} {:>12} {:>12}\n",
                label,
                s.start_us,
                s.duration_us()
            ));
        }
        out.push_str(&format!(
            "{:<42} {:>12} {:>12}\n",
            "total", 0, self.total_us
        ));
        if !self.metrics.counters.is_empty() || !self.metrics.gauges.is_empty() {
            out.push_str("metrics\n");
            for e in &self.metrics.counters {
                out.push_str(&format!("  {:<40} {:>12}\n", e.name, e.value));
            }
            for e in &self.metrics.gauges {
                out.push_str(&format!("  {:<40} {:>12}\n", e.name, e.value));
            }
            for e in &self.metrics.histograms {
                out.push_str(&format!(
                    "  {:<40} {:>12} (count; mean {:.1})\n",
                    e.name,
                    e.histogram.count,
                    e.histogram.mean().unwrap_or(0.0)
                ));
            }
        }
        out
    }

    /// The slowest span under `prefix`, if any.
    pub fn slowest_under(&self, prefix: &str) -> Option<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| {
                s.path.len() > prefix.len() + 1
                    && s.path.starts_with(prefix)
                    && s.path.as_bytes()[prefix.len()] == b'/'
            })
            .max_by_key(|s| s.duration_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_nested_spans() {
        let obs = Obs::enabled();
        {
            let _run = obs.span("run");
            {
                let _ctx = obs.span("run/context");
                let _inner = obs.span("run/context/bot_table");
            }
            let _passes = obs.span("run/passes");
        }
        let t = obs.finish(false);
        assert_eq!(t.schema_version, TELEMETRY_SCHEMA_VERSION);
        assert_eq!(t.spans.len(), 4);
        // Parents strictly contain their children in time.
        let run = t.span("run").unwrap();
        let ctx = t.span("run/context").unwrap();
        let inner = t.span("run/context/bot_table").unwrap();
        assert!(run.start_us <= ctx.start_us && ctx.end_us <= run.end_us);
        assert!(ctx.start_us <= inner.start_us && inner.end_us <= ctx.end_us);
        assert!(run.contains_path(ctx) && ctx.contains_path(inner));
        assert_eq!(t.spans_under("run").count(), 3);
        assert_eq!(t.spans_under("run/context").count(), 1);
        assert_eq!(t.total_us, run.end_us);
        assert!(!t.is_empty());
    }

    #[test]
    fn disabled_observer_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        {
            let _g = obs.span("run");
        }
        obs.record_span("x", 0, 5);
        obs.counter("c").add(3);
        obs.histogram("h").record(1);
        let t = obs.finish(true);
        assert_eq!(t, RunTelemetry::default());
        assert!(t.is_empty());
        assert_eq!(t.schema_version, 0, "disabled runs are marked versionless");
    }

    #[test]
    fn explicit_spans_from_threads_all_land() {
        let obs = Obs::enabled();
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let obs = &obs;
                s.spawn(move || {
                    let start = obs.now_us();
                    obs.counter("work").inc();
                    obs.record_span(format!("passes/p{i}"), start, obs.now_us());
                });
            }
        });
        let t = obs.finish(true);
        assert_eq!(t.spans_under("passes").count(), 8);
        assert_eq!(t.metrics.counter("work"), Some(8));
        assert!(t.parallel);
        assert!(t.threads >= 1);
    }

    #[test]
    fn render_mentions_spans_and_metrics() {
        let obs = Obs::enabled();
        {
            let _g = obs.span("context");
        }
        obs.counter("context/attacks").add(3);
        obs.gauge("context/workers").set(2);
        obs.histogram("scheduler/wait_us").record(5);
        let t = obs.finish(false);
        let s = t.render();
        assert!(s.contains("serial"));
        assert!(s.contains("context"));
        assert!(s.contains("context/attacks"));
        assert!(s.contains("scheduler/wait_us"));
        assert!(s.contains("total"));
        assert_eq!(t.slowest_under("nothing"), None);
    }
}
