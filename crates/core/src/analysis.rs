//! The unified entry point: one builder for every way to run the
//! pipeline.
//!
//! [`Analysis`] replaces the twelve historical `run_*`/`try_run_*`
//! associated functions on [`AnalysisReport`] (now thin `#[deprecated]`
//! shims). A builder names a source (a [`Dataset`], or a prebuilt
//! [`AnalysisContext`] via [`Analysis::over`]), optionally selects an
//! engine (monolithic by default; [`Analysis::epochs`] for the sharded
//! fold, [`Analysis::incremental`] for one-epoch-at-a-time appends,
//! [`Analysis::baseline`] for the pre-refactor reference), tunes
//! [`PipelineOptions`] through the same setter names, and runs:
//!
//! ```ignore
//! let report = Analysis::new(&ds)
//!     .parallel(true)
//!     .epochs(Seconds(7 * 24 * 3600))
//!     .incremental()
//!     .telemetry(true)
//!     .kernels(KernelPolicy::Auto)
//!     .try_run()?;
//! ```
//!
//! Every spelling serializes byte-identically — the conformance suite
//! and the builder-equivalence tests in ddos-testkit pin each legacy
//! entry point against its builder form.

use ddos_obs::Obs;
use ddos_schema::{Dataset, Seconds};
use ddos_stats::ArimaSpec;

use crate::context::AnalysisContext;
use crate::fault::{self, PipelineError};
use crate::kernels::KernelPolicy;
use crate::pipeline::{self, AnalysisReport, IncrementalPipeline, PipelineOptions};

/// The default epoch length for [`Analysis::incremental`] when
/// [`Analysis::epochs`] was not called: one week, the paper's natural
/// reporting period.
const DEFAULT_EPOCH_LEN: Seconds = Seconds(7 * 24 * 3600);

/// What the builder runs the pipeline over.
enum Source<'d> {
    /// A dataset — the builder picks and drives an engine.
    Dataset(&'d Dataset),
    /// A prebuilt context — only the pass scheduler runs.
    Context(&'d AnalysisContext<'d>),
}

/// Which engine materializes the context.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// One-shot monolithic context build (the default).
    Batch,
    /// Epoch-sharded batch fold.
    Folded,
    /// One-epoch-at-a-time appends through [`IncrementalPipeline`].
    Incremental,
    /// The pre-refactor reference pipeline (ignores the scheduler,
    /// telemetry, and kernel axes by construction).
    Baseline,
}

/// The one-stop pipeline builder — see the [module docs](self).
pub struct Analysis<'d> {
    source: Source<'d>,
    mode: Mode,
    epoch_len: Option<Seconds>,
    opts: PipelineOptions,
    obs: Option<&'d Obs>,
}

impl<'d> Analysis<'d> {
    /// Starts a builder over a dataset with the default options
    /// (monolithic engine, parallel, telemetry on, `Auto` kernels).
    pub fn new(ds: &'d Dataset) -> Analysis<'d> {
        Analysis {
            source: Source::Dataset(ds),
            mode: Mode::Batch,
            epoch_len: None,
            opts: PipelineOptions::default(),
            obs: None,
        }
    }

    /// Starts a builder that runs the pass scheduler over a context
    /// built elsewhere (the conformance suite feeds the same passes a
    /// columnar and a reference-built context this way). Engine
    /// selectors ([`Analysis::epochs`], [`Analysis::incremental`],
    /// [`Analysis::baseline`]) are incompatible with a prebuilt context
    /// and panic at [`Analysis::try_run`]. Without [`Analysis::obs`] no
    /// telemetry is recorded — the context build, where most of it
    /// lives, already happened.
    pub fn over(ctx: &'d AnalysisContext<'d>) -> Analysis<'d> {
        Analysis {
            source: Source::Context(ctx),
            mode: Mode::Batch,
            epoch_len: None,
            opts: PipelineOptions::default(),
            obs: None,
        }
    }

    /// Replaces the whole option block in one call (the migration path
    /// for callers that already hold a [`PipelineOptions`]).
    pub fn options(mut self, opts: PipelineOptions) -> Analysis<'d> {
        self.opts = opts;
        self
    }

    /// Sets the ARIMA order for the prediction pass.
    pub fn spec(mut self, spec: ArimaSpec) -> Analysis<'d> {
        self.opts = self.opts.spec(spec);
        self
    }

    /// Sets whether the context build and pass scheduler fan out on
    /// scoped threads. Report bytes are identical either way.
    pub fn parallel(mut self, parallel: bool) -> Analysis<'d> {
        self.opts = self.opts.parallel(parallel);
        self
    }

    /// Sets whether spans and metrics are recorded into
    /// [`AnalysisReport::telemetry`]. Ignored when [`Analysis::obs`]
    /// supplies a recorder (its own enabled state wins) and for
    /// [`Analysis::over`] sources without one.
    pub fn telemetry(mut self, telemetry: bool) -> Analysis<'d> {
        self.opts = self.opts.telemetry(telemetry);
        self
    }

    /// Sets the kernel policy for the pass bodies. Report bytes are
    /// identical for every policy.
    pub fn kernels(mut self, kernels: KernelPolicy) -> Analysis<'d> {
        self.opts = self.opts.kernels(kernels);
        self
    }

    /// Records spans and metrics into a caller-supplied [`Obs`] instead
    /// of a run-local recorder — loaders land their ingest telemetry in
    /// the same [`ddos_obs::RunTelemetry`] as the analysis spans this
    /// way. Overrides [`Analysis::telemetry`].
    pub fn obs(mut self, obs: &'d Obs) -> Analysis<'d> {
        self.obs = Some(obs);
        self
    }

    /// Selects the epoch-sharded fold engine with the given epoch
    /// length: shards build per epoch (on scoped threads when
    /// parallel) and fold pairwise into one context that the merge
    /// laws make bit-identical to the monolithic build.
    /// [`Analysis::incremental`] afterwards keeps the length but
    /// switches to one-at-a-time appends.
    pub fn epochs(mut self, epoch_len: Seconds) -> Analysis<'d> {
        self.epoch_len = Some(epoch_len);
        self.mode = Mode::Folded;
        self
    }

    /// Selects the incremental engine: epochs append one at a time
    /// through an [`IncrementalPipeline`] and only dirtied passes
    /// re-run per append. Uses the [`Analysis::epochs`] length if one
    /// was set, else one-week epochs.
    pub fn incremental(mut self) -> Analysis<'d> {
        self.mode = Mode::Incremental;
        self
    }

    /// Selects the pre-refactor monolithic reference pipeline (every
    /// analysis rescans the dataset for itself). Honors only the ARIMA
    /// spec; the scheduler, telemetry, and kernel axes don't exist on
    /// this path.
    pub fn baseline(mut self) -> Analysis<'d> {
        self.mode = Mode::Baseline;
        self
    }

    /// Runs the configured pipeline, panicking on an injected fault —
    /// the common case with no fault plan installed.
    pub fn run(&self) -> AnalysisReport {
        fault::infallible(self.try_run())
    }

    /// Runs the configured pipeline, surfacing `epoch/merge` and
    /// `scheduler/pass` fault injections as `Err` instead of
    /// panicking. The pipeline holds no cross-run state, so retrying
    /// the same builder without the fault plan reproduces the golden
    /// report.
    ///
    /// # Panics
    ///
    /// If an engine selector was combined with an [`Analysis::over`]
    /// source — a prebuilt context already fixed how the context came
    /// together.
    pub fn try_run(&self) -> Result<AnalysisReport, PipelineError> {
        let owned;
        let obs = match self.obs {
            Some(obs) => obs,
            None => {
                owned = match self.source {
                    // `over` without a recorder keeps the historical
                    // `run_on` contract: no telemetry at all.
                    Source::Context(_) => Obs::disabled(),
                    Source::Dataset(_) if self.opts.telemetry => Obs::enabled(),
                    Source::Dataset(_) => Obs::disabled(),
                };
                &owned
            }
        };
        match self.source {
            Source::Context(ctx) => {
                assert!(
                    self.mode == Mode::Batch,
                    "Analysis::over(..) runs the pass scheduler over a prebuilt context; \
                     engine selectors (.epochs/.incremental/.baseline) need a Dataset \
                     source (Analysis::new)"
                );
                pipeline::run_over(ctx, self.opts.parallel, obs)
            }
            Source::Dataset(ds) => match self.mode {
                Mode::Batch => pipeline::run_monolithic(ds, self.opts, obs),
                Mode::Folded => {
                    let len = self
                        .epoch_len
                        .expect("Folded mode implies epochs() set a length");
                    pipeline::run_folded(ds, self.opts, len, obs)
                }
                Mode::Incremental => {
                    let len = self.epoch_len.unwrap_or(DEFAULT_EPOCH_LEN);
                    match self.obs {
                        Some(obs) => {
                            IncrementalPipeline::with_obs(ds, self.opts, len, obs).try_into_report()
                        }
                        None => IncrementalPipeline::new(ds, self.opts, len).try_into_report(),
                    }
                }
                Mode::Baseline => Ok(pipeline::baseline_report(ds, self.opts.spec)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};
    use ddos_schema::Family;

    fn tiny() -> Dataset {
        dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Pandora, 2, 120, 700, 1),
            attack(Family::Dirtjumper, 3, 5_000, 900, 2),
        ])
    }

    #[test]
    fn every_engine_spelling_matches_the_batch_report() {
        let ds = tiny();
        let json = |r: &AnalysisReport| serde_json::to_string(r).unwrap();
        let batch = json(&Analysis::new(&ds).run());
        assert_eq!(batch, json(&Analysis::new(&ds).parallel(false).run()));
        assert_eq!(batch, json(&Analysis::new(&ds).telemetry(false).run()));
        assert_eq!(
            batch,
            json(&Analysis::new(&ds).epochs(Seconds(1_000)).run())
        );
        assert_eq!(
            batch,
            json(
                &Analysis::new(&ds)
                    .epochs(Seconds(1_000))
                    .incremental()
                    .run()
            )
        );
        assert_eq!(batch, json(&Analysis::new(&ds).incremental().run()));
        assert_eq!(batch, json(&Analysis::new(&ds).baseline().run()));
        assert_eq!(
            batch,
            json(&Analysis::new(&ds).kernels(KernelPolicy::Reference).run())
        );
    }

    #[test]
    fn over_runs_the_scheduler_without_telemetry() {
        let ds = tiny();
        let ctx = AnalysisContext::build(&ds, ArimaSpec::DEFAULT);
        let report = Analysis::over(&ctx).parallel(false).run();
        assert!(report.telemetry.is_empty());
        let json = |r: &AnalysisReport| serde_json::to_string(r).unwrap();
        assert_eq!(json(&report), json(&Analysis::new(&ds).run()));
    }

    #[test]
    #[should_panic(expected = "prebuilt context")]
    fn engine_selectors_reject_a_prebuilt_context() {
        let ds = tiny();
        let ctx = AnalysisContext::build(&ds, ArimaSpec::DEFAULT);
        let _ = Analysis::over(&ctx).epochs(Seconds(1_000)).try_run();
    }

    #[test]
    fn shared_obs_carries_caller_spans_into_the_telemetry() {
        let ds = tiny();
        let obs = Obs::enabled();
        {
            let _span = obs.span("caller/load");
        }
        let report = Analysis::new(&ds).obs(&obs).run();
        assert!(report.telemetry.span("caller/load").is_some());
        assert!(report.telemetry.span("context").is_some());
    }
}
