//! The shared analysis context: everything the passes need, built once.
//!
//! Before the pass-based pipeline, every analysis rescanned the dataset
//! for itself: the dispersion and prediction passes each geolocated every
//! attack source (twice per family in total), the shift analysis resolved
//! them a third time, and four separate analyses rebuilt and re-sorted
//! the same per-target attack index. [`AnalysisContext`] hoists those
//! shared joins into one construction step so each is computed exactly
//! once and borrowed by every pass.
//!
//! # Invariants
//!
//! The context is *read-only* and derived purely from the dataset (plus
//! the chosen ARIMA order), which is what lets the scheduler run passes
//! against it from multiple threads:
//!
//! * `durations[i]` and `all_starts[i]` describe `dataset.attacks()[i]`;
//!   both vectors share the dataset's trace order (sorted by start time).
//! * `target_timelines` is sorted by target IP; each timeline's attack
//!   indices are ascending, hence in start order.
//! * The per-family slots ([`FamilyContext`]) follow [`Family::ACTIVE`]
//!   order. Each family's `starts` are ascending; its `dispersion` is
//!   bit-identical to what [`FamilyDispersion::compute`] produces; its
//!   `weekly_bots` maps hold exactly the resolvable `(bot, country)`
//!   participations per window week.

use std::collections::HashSet;

use ddos_geo::dispersion;
use ddos_schema::{CountryCode, Dataset, Family, IpAddr4, Timestamp};
use ddos_stats::ArimaSpec;

use crate::source::dispersion::FamilyDispersion;
use crate::util::{BotIndex, IpMap};

/// One target's attack history: indices into `Dataset::attacks()`,
/// ascending (therefore in start order).
#[derive(Debug, Clone)]
pub struct TargetTimeline {
    /// The victim IP.
    pub target: IpAddr4,
    /// Indices of the attacks on this target, ascending.
    pub attacks: Vec<usize>,
}

/// Per-family precomputation, one slot per [`Family::ACTIVE`] entry.
#[derive(Debug, Clone)]
pub struct FamilyContext {
    /// The family.
    pub family: Family,
    /// Start times of the family's attacks, ascending.
    pub starts: Vec<Timestamp>,
    /// The family's dispersion series (identical to
    /// [`FamilyDispersion::compute`], but sharing the context's single
    /// geolocation join).
    pub dispersion: FamilyDispersion,
    /// Per window week: the distinct resolvable bots participating in
    /// the family's attacks that week, with their countries.
    pub weekly_bots: Vec<IpMap<CountryCode>>,
}

/// Everything the analysis passes share, built once per dataset.
#[derive(Debug)]
pub struct AnalysisContext<'a> {
    /// The dataset under analysis.
    pub dataset: &'a Dataset,
    /// ARIMA order for the prediction pass.
    pub spec: ArimaSpec,
    /// The `Botlist` join (bot IP → country + coordinates).
    pub bots: BotIndex,
    /// Duration in seconds of each attack, in trace order.
    pub durations: Vec<f64>,
    /// Start time of each attack, in trace order.
    pub all_starts: Vec<Timestamp>,
    /// Per-target attack histories, sorted by target IP.
    pub target_timelines: Vec<TargetTimeline>,
    /// Per-family precomputation in [`Family::ACTIVE`] order.
    families: Vec<FamilyContext>,
}

impl<'a> AnalysisContext<'a> {
    /// Builds the context with the default ARIMA order.
    pub fn new(dataset: &'a Dataset) -> AnalysisContext<'a> {
        Self::build(dataset, ArimaSpec::DEFAULT)
    }

    /// Builds the context: one pass over the attacks for the global
    /// vectors and timelines, plus one pass per active family that
    /// resolves each attack source through the bot index exactly once
    /// (feeding both the dispersion series and the weekly bot maps).
    pub fn build(dataset: &'a Dataset, spec: ArimaSpec) -> AnalysisContext<'a> {
        let bots = BotIndex::build(dataset);
        let window = dataset.window();
        let attacks = dataset.attacks();

        let mut durations = Vec::with_capacity(attacks.len());
        let mut all_starts = Vec::with_capacity(attacks.len());
        let mut by_target: IpMap<Vec<usize>> = IpMap::default();
        for (i, a) in attacks.iter().enumerate() {
            durations.push(a.duration().as_f64());
            all_starts.push(a.start);
            by_target.entry(a.target_ip).or_default().push(i);
        }
        let mut target_timelines: Vec<TargetTimeline> = by_target
            .into_iter()
            .map(|(target, attacks)| TargetTimeline { target, attacks })
            .collect();
        target_timelines.sort_by_key(|t| t.target);

        let num_weeks = window.num_weeks();
        let families = Family::ACTIVE
            .into_iter()
            .map(|family| {
                let mut starts = Vec::new();
                let mut series = Vec::new();
                let mut days = HashSet::new();
                let mut weekly: Vec<IpMap<CountryCode>> = vec![IpMap::default(); num_weeks];
                for a in dataset.attacks_of(family) {
                    starts.push(a.start);
                    let week = window.week_index(a.start);
                    let mut coords = Vec::with_capacity(a.sources.len());
                    for &ip in &a.sources {
                        let Some((cc, c)) = bots.lookup(ip) else {
                            continue;
                        };
                        coords.push(c);
                        if let Some(w) = week {
                            weekly[w].insert(ip, cc);
                        }
                    }
                    let Some(d) = dispersion(&coords) else {
                        continue;
                    };
                    if let Some(day) = window.day_index(a.start) {
                        days.insert(day);
                    }
                    series.push((a.start, d.value()));
                }
                FamilyContext {
                    family,
                    starts,
                    dispersion: FamilyDispersion {
                        family,
                        series,
                        active_days: days.len(),
                    },
                    weekly_bots: weekly,
                }
            })
            .collect();

        AnalysisContext {
            dataset,
            spec,
            bots,
            durations,
            all_starts,
            target_timelines,
            families,
        }
    }

    /// The per-family slots, in [`Family::ACTIVE`] order.
    pub fn families(&self) -> &[FamilyContext] {
        &self.families
    }

    /// One active family's slot (`None` for inactive families).
    pub fn family(&self, family: Family) -> Option<&FamilyContext> {
        self.families.iter().find(|fc| fc.family == family)
    }

    /// One active family's dispersion series.
    pub fn dispersion_of(&self, family: Family) -> Option<&FamilyDispersion> {
        self.family(family).map(|fc| &fc.dispersion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};
    use crate::source::dispersion::qualifying_families;
    use crate::source::shift::ShiftAnalysis;

    #[test]
    fn vectors_follow_trace_order() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Pandora, 2, 120, 700, 1),
            attack(Family::Dirtjumper, 3, 5_000, 900, 2),
        ]);
        let ctx = AnalysisContext::new(&ds);
        assert_eq!(ctx.durations, vec![600.0, 700.0, 900.0]);
        assert_eq!(
            ctx.all_starts,
            ds.attacks().iter().map(|a| a.start).collect::<Vec<_>>()
        );
        // Two targets, sorted by IP, indices ascending.
        assert_eq!(ctx.target_timelines.len(), 2);
        assert!(ctx.target_timelines[0].target < ctx.target_timelines[1].target);
        assert_eq!(ctx.target_timelines[0].attacks, vec![0, 1]);
        assert_eq!(ctx.target_timelines[1].attacks, vec![2]);
    }

    #[test]
    fn family_slots_cover_active_families() {
        let ds = dataset(vec![attack(Family::Pandora, 1, 100, 60, 1)]);
        let ctx = AnalysisContext::new(&ds);
        assert_eq!(ctx.families().len(), Family::ACTIVE.len());
        let fc = ctx.family(Family::Pandora).unwrap();
        assert_eq!(fc.starts, vec![Timestamp(100)]);
        assert!(ctx.dispersion_of(Family::Pandora).is_some());
    }

    #[test]
    fn dispersion_matches_standalone_compute() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Pandora, 2, 120, 700, 1),
        ]);
        let ctx = AnalysisContext::new(&ds);
        for family in Family::ACTIVE {
            let standalone = FamilyDispersion::compute(&ds, &ctx.bots, family);
            assert_eq!(ctx.dispersion_of(family), Some(&standalone));
        }
        // And the shared join agrees with the standalone shift analysis.
        assert_eq!(
            ShiftAnalysis::compute_ctx(&ctx),
            ShiftAnalysis::compute(&ds, &ctx.bots)
        );
        assert_eq!(
            crate::source::dispersion::qualifying_families_ctx(&ctx),
            qualifying_families(&ds, &ctx.bots)
        );
    }

    #[test]
    fn empty_dataset_builds() {
        let ds = dataset(vec![]);
        let ctx = AnalysisContext::new(&ds);
        assert!(ctx.durations.is_empty());
        assert!(ctx.target_timelines.is_empty());
        assert_eq!(ctx.families().len(), Family::ACTIVE.len());
    }
}
