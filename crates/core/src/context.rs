//! The shared analysis context: everything the passes need, built once.
//!
//! Before the pass-based pipeline, every analysis rescanned the dataset
//! for itself: the dispersion and prediction passes each geolocated every
//! attack source (twice per family in total), the shift analysis resolved
//! them a third time, and four separate analyses rebuilt and re-sorted
//! the same per-target attack index. [`AnalysisContext`] hoists those
//! shared joins into one construction step so each is computed exactly
//! once and borrowed by every pass.
//!
//! Since the columnar substrate ([`crate::columnar`]) the build itself is
//! the hot kernel treated as such: the `Botlist` becomes a [`BotTable`]
//! (sorted IP column + precomputed trig), the attack→source join becomes
//! a [`SourceTable`] (every source list as dense `u32` dictionary ids),
//! the per-snapshot dispersion runs through the `*_precomp` kernels of
//! `ddos-geo` that read cached `sin`/`cos` instead of recomputing each
//! bot's trigonometry per attack-participation, and the per-family
//! resolution fans out on scoped threads in deterministic chunks.
//! [`AnalysisContext::build_reference`] keeps the pre-columnar serial
//! path as the equivalence/benchmark baseline.
//!
//! # Invariants
//!
//! The context is *read-only* and derived purely from the dataset (plus
//! the chosen ARIMA order), which is what lets the scheduler run passes
//! against it from multiple threads:
//!
//! * `durations[i]` and `all_starts[i]` describe `dataset.attacks()[i]`;
//!   both vectors share the dataset's trace order (sorted by start time).
//! * `target_timelines` is sorted by target IP; each timeline's attack
//!   indices are ascending, hence in start order.
//! * The per-family slots ([`FamilyContext`]) follow [`Family::ACTIVE`]
//!   order (slot `i` holds `Family::ACTIVE[i]`, whose dense
//!   [`Family::index`] is also `i`). Each family's `starts` are
//!   ascending; its `dispersion` is bit-identical to what
//!   [`FamilyDispersion::compute`] produces; its `weekly_bots` maps hold
//!   exactly the resolvable `(bot, country)` participations per window
//!   week.
//! * Parallel and serial builds are **bit-identical**: chunks merge in
//!   (family, chunk) order, and the precomp kernels evaluate the exact
//!   scalar expressions (see `ddos_geo::trig`). The pipeline-equivalence
//!   suite enforces this against [`AnalysisContext::build_reference`].

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

use ddos_geo::{
    dispersion, dispersion_precomp_indexed_counted, dispersion_precomp_indexed_presummed,
    CenterSum, KernelCounters,
};
use ddos_obs::Obs;
use ddos_schema::{CountryCode, Dataset, Family, IpAddr4, Timestamp};
use ddos_stats::ArimaSpec;

use crate::columnar::{
    chunk_ranges, radix_sort_by_ip, worker_count, BotTable, SourceTable, NO_BOT,
};
use crate::kernels::KernelPolicy;
use crate::source::dispersion::FamilyDispersion;
use crate::util::{BotIndex, IpMap};

/// One target's attack history: indices into `Dataset::attacks()`,
/// ascending (therefore in start order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetTimeline {
    /// The victim IP.
    pub target: IpAddr4,
    /// Indices of the attacks on this target, ascending.
    pub attacks: Vec<usize>,
}

/// Per-family precomputation, one slot per [`Family::ACTIVE`] entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyContext {
    /// The family.
    pub family: Family,
    /// Start times of the family's attacks, ascending.
    pub starts: Vec<Timestamp>,
    /// The family's dispersion series (identical to
    /// [`FamilyDispersion::compute`], but sharing the context's single
    /// geolocation join).
    pub dispersion: FamilyDispersion,
    /// Per window week: the distinct resolvable bots participating in
    /// the family's attacks that week, with their countries.
    pub weekly_bots: Vec<IpMap<CountryCode>>,
}

/// Everything the analysis passes share, built once per dataset.
#[derive(Debug)]
pub struct AnalysisContext<'a> {
    /// The dataset under analysis.
    pub dataset: &'a Dataset,
    /// ARIMA order for the prediction pass.
    pub spec: ArimaSpec,
    /// The `Botlist` as a columnar table: sorted IPs, countries, and
    /// per-bot precomputed trigonometry.
    pub bot_table: BotTable,
    /// The trace-wide attack→source join: every attack's source list as
    /// dense dictionary ids, with an id → bot-row column.
    pub sources: SourceTable,
    /// Duration in seconds of each attack, in trace order.
    pub durations: Vec<f64>,
    /// Start time of each attack, in trace order.
    pub all_starts: Vec<Timestamp>,
    /// Per-target attack histories, sorted by target IP.
    pub target_timelines: Vec<TargetTimeline>,
    /// Which pass-body kernels the passes run against this context
    /// (reference algorithms vs chunked partial-merge kernels — the
    /// report bytes are identical either way; see [`crate::kernels`]).
    pub kernels: KernelPolicy,
    /// Per-family precomputation in [`Family::ACTIVE`] order.
    families: Vec<FamilyContext>,
}

/// A reusable last-seen-week stamp buffer, one slot per dictionary id.
///
/// Each chunk gets a fresh, disjoint tag range (`tag_base + week`), so
/// the buffer is valid across chunks without re-zeroing — a worker
/// allocates it once instead of clearing `dict_len` slots per family.
#[derive(Default)]
struct WeekStamp {
    tags: Vec<u32>,
    next_base: u32,
}

impl WeekStamp {
    /// Starts a new chunk: sizes the buffer on first use and claims an
    /// unused tag range. Tag 0 is reserved as "never stamped".
    fn begin(&mut self, dict_len: usize, num_weeks: usize) -> u32 {
        if self.tags.len() < dict_len {
            self.tags.resize(dict_len, 0);
        }
        let span = num_weeks.max(1) as u32;
        if self.next_base == 0 {
            // First use: the buffer is already zeroed.
            self.next_base = 1;
        } else if self.next_base > u32::MAX - span {
            // Theoretical tag exhaustion: start over.
            self.tags.fill(0);
            self.next_base = 1;
        }
        let base = self.next_base;
        self.next_base += span;
        base
    }
}

/// One chunk's share of a family's resolution: everything the merge
/// needs, accumulated in the chunk's attack order.
struct FamilyChunk {
    starts: Vec<Timestamp>,
    series: Vec<(Timestamp, f64)>,
    /// Day indices of snapshots that produced a dispersion value (may
    /// repeat; deduplicated at merge).
    days: Vec<usize>,
    weekly: Vec<IpMap<CountryCode>>,
}

/// Resolves one chunk of a family's attacks through the columnar
/// substrate: dictionary ids → bot rows, then the indexed dispersion
/// kernel reads the shared trig column in place through the row list —
/// no per-snapshot gather copy. Mirrors the scalar loop of
/// [`AnalysisContext::build_reference`] expression for expression.
fn resolve_family_chunk(
    dataset: &Dataset,
    bots: &BotTable,
    sources: &SourceTable,
    attack_indices: &[u32],
    num_weeks: usize,
    stamp: &mut WeekStamp,
    kernel: &KernelCounters,
) -> FamilyChunk {
    let window = dataset.window();
    let attacks = dataset.attacks();
    let mut out = FamilyChunk {
        starts: Vec::with_capacity(attack_indices.len()),
        series: Vec::with_capacity(attack_indices.len()),
        days: Vec::new(),
        weekly: vec![IpMap::default(); num_weeks],
    };
    // Weekly pass — one stamp sweep dedups each week's participants
    // (bots recur across many attacks of a week) and records the firsts
    // flat; the maps then build in one tight pass, reserved at exactly
    // their final size. Insertion order differs from the reference
    // loop's attack-interleaved order, but the recorded (ip, country)
    // set cannot — and a map's content is order-free.
    //
    // `ids_of(i)` mirrors `attacks[i].sources` one-to-one, so a
    // first-of-the-week record reads its IP from the attack's own list
    // rather than through the dictionary column.
    let tag_base = stamp.begin(sources.dict_len(), num_weeks);
    let tags = &mut stamp.tags[..];
    let mut per_week = vec![0usize; num_weeks];
    let mut firsts: Vec<(IpAddr4, CountryCode, u32)> = Vec::new();
    for &ai in attack_indices {
        let a = &attacks[ai as usize];
        let Some(w) = window.week_index(a.start) else {
            continue;
        };
        let tag = tag_base + w as u32;
        for (k, &id) in sources.ids_of(ai as usize).iter().enumerate() {
            if tags[id as usize] == tag {
                continue;
            }
            tags[id as usize] = tag;
            let row = sources.bot_row(id);
            if row != NO_BOT {
                per_week[w] += 1;
                firsts.push((a.sources[k], bots.country(row), w as u32));
            }
        }
    }
    for (w, &n) in per_week.iter().enumerate() {
        out.weekly[w].reserve(n);
    }
    for &(ip, country, w) in &firsts {
        out.weekly[w as usize].insert(ip, country);
    }
    // Dispersion pass — a resolved id *is* its row (`bot_row` is an
    // identity below `bots_len`), so the common all-resolved attack
    // feeds its id slice to the kernel as the row list directly, with
    // no per-id scan at all; only an attack with unresolvable sources
    // filters its ids into the scratch buffer.
    let mut rows: Vec<u32> = Vec::new();
    for &ai in attack_indices {
        let a = &attacks[ai as usize];
        out.starts.push(a.start);
        let ids = sources.ids_of(ai as usize);
        let row_list: &[u32] = if sources.unresolved_in(ai as usize) == 0 {
            ids
        } else {
            rows.clear();
            rows.extend(
                ids.iter()
                    .copied()
                    .filter(|&id| sources.bot_row(id) != NO_BOT),
            );
            &rows
        };
        let Some(d) = dispersion_precomp_indexed_counted(bots.trigs(), row_list, kernel) else {
            continue;
        };
        if let Some(day) = window.day_index(a.start) {
            // Attacks arrive in start order, so days are nondecreasing:
            // dedup against the last push (the merge treats `days` as a
            // set, so only the distinct values matter).
            if out.days.last() != Some(&day) {
                out.days.push(day);
            }
        }
        out.series.push((a.start, d.value()));
    }
    out
}

/// The fused variant of [`resolve_family_chunk`]: one sweep over the
/// chunk's attacks drives both substreams — the weekly stamp dedup and
/// the dispersion snapshot — instead of two, and for the common fully-
/// resolved attack the sweep fuses element-for-element: one loop over
/// the id slice both stamps the weekly dedup and folds the dispersion
/// center sum (a resolved id *is* its trig row), so each id slice is
/// walked once instead of twice. The center fold pushes in id order
/// and [`dispersion_precomp_indexed_presummed`] finishes with the
/// one-call kernel's exact expressions, so every output bit matches
/// the two-sweep resolver; the context equivalence suite and the
/// kernel proptests pin that. Selected by any non-`Reference`
/// [`KernelPolicy`]; at paper scale this is the context build's
/// hottest loop.
fn resolve_family_chunk_fused(
    dataset: &Dataset,
    bots: &BotTable,
    sources: &SourceTable,
    attack_indices: &[u32],
    num_weeks: usize,
    stamp: &mut WeekStamp,
    kernel: &KernelCounters,
) -> FamilyChunk {
    let window = dataset.window();
    let attacks = dataset.attacks();
    let trigs = bots.trigs();
    let mut out = FamilyChunk {
        starts: Vec::with_capacity(attack_indices.len()),
        series: Vec::with_capacity(attack_indices.len()),
        days: Vec::new(),
        weekly: vec![IpMap::default(); num_weeks],
    };
    let tag_base = stamp.begin(sources.dict_len(), num_weeks);
    let tags = &mut stamp.tags[..];
    let mut per_week = vec![0usize; num_weeks];
    let mut firsts: Vec<(IpAddr4, CountryCode, u32)> = Vec::new();
    let mut rows: Vec<u32> = Vec::new();
    for &ai in attack_indices {
        let a = &attacks[ai as usize];
        let ids = sources.ids_of(ai as usize);
        out.starts.push(a.start);
        let d = if sources.unresolved_in(ai as usize) == 0 {
            // Fully resolved: ids are the kernel's row list, so one
            // fused loop stamps the weekly dedup and folds the center
            // sum together. Every id resolves, so the two-sweep pass's
            // `bot_row(id) != NO_BOT` check is vacuous here.
            let mut sum = CenterSum::default();
            if let Some(w) = window.week_index(a.start) {
                let tag = tag_base + w as u32;
                for (k, &id) in ids.iter().enumerate() {
                    sum.push(&trigs[id as usize]);
                    if tags[id as usize] != tag {
                        tags[id as usize] = tag;
                        per_week[w] += 1;
                        firsts.push((a.sources[k], bots.country(id), w as u32));
                    }
                }
            } else {
                for &id in ids {
                    sum.push(&trigs[id as usize]);
                }
            }
            dispersion_precomp_indexed_presummed(trigs, ids, sum, kernel)
        } else {
            // Unresolvable sources present: fall back to the two
            // substreams of the two-sweep pass, verbatim.
            if let Some(w) = window.week_index(a.start) {
                let tag = tag_base + w as u32;
                for (k, &id) in ids.iter().enumerate() {
                    if tags[id as usize] == tag {
                        continue;
                    }
                    tags[id as usize] = tag;
                    let row = sources.bot_row(id);
                    if row != NO_BOT {
                        per_week[w] += 1;
                        firsts.push((a.sources[k], bots.country(row), w as u32));
                    }
                }
            }
            rows.clear();
            rows.extend(
                ids.iter()
                    .copied()
                    .filter(|&id| sources.bot_row(id) != NO_BOT),
            );
            dispersion_precomp_indexed_counted(trigs, &rows, kernel)
        };
        let Some(d) = d else {
            continue;
        };
        if let Some(day) = window.day_index(a.start) {
            if out.days.last() != Some(&day) {
                out.days.push(day);
            }
        }
        out.series.push((a.start, d.value()));
    }
    for (w, &n) in per_week.iter().enumerate() {
        out.weekly[w].reserve(n);
    }
    for &(ip, country, w) in &firsts {
        out.weekly[w as usize].insert(ip, country);
    }
    out
}

impl<'a> AnalysisContext<'a> {
    /// Builds the context with the default ARIMA order.
    pub fn new(dataset: &'a Dataset) -> AnalysisContext<'a> {
        Self::build(dataset, ArimaSpec::DEFAULT)
    }

    /// Builds the context on the columnar substrate with the build
    /// phases parallelized (see [`AnalysisContext::build_opts`]).
    pub fn build(dataset: &'a Dataset, spec: ArimaSpec) -> AnalysisContext<'a> {
        Self::build_opts(dataset, spec, true)
    }

    /// Builds the context on the columnar substrate.
    ///
    /// Phases: (1) the [`BotTable`] (sort + one trig precompute per
    /// distinct bot), (2) the [`SourceTable`] CSR join (data-parallel
    /// over disjoint output slices when `parallel`), (3) the global
    /// per-attack vectors and target timelines, (4) per-family source
    /// resolution — each family's attack list is cut into chunks that
    /// scoped worker threads drain from a shared queue, and the chunk
    /// results merge in (family, chunk) order, so the output is
    /// bit-identical to the serial build.
    pub fn build_opts(
        dataset: &'a Dataset,
        spec: ArimaSpec,
        parallel: bool,
    ) -> AnalysisContext<'a> {
        Self::build_obs(dataset, spec, parallel, &Obs::disabled())
    }

    /// [`AnalysisContext::build_opts`] with the build stages telemetered
    /// into `obs`: one `context/<stage>` span per phase, gauges for the
    /// table sizes, a `context/chunk_us` histogram of per-chunk
    /// resolution time, and `geo/dispersion_*` counters of kernel work.
    /// Recording is relaxed-atomic handles on the worker paths, so the
    /// built context is bit-identical with telemetry on, off, serial,
    /// or parallel.
    pub fn build_obs(
        dataset: &'a Dataset,
        spec: ArimaSpec,
        parallel: bool,
        obs: &Obs,
    ) -> AnalysisContext<'a> {
        Self::build_kernels(dataset, spec, parallel, KernelPolicy::Auto, obs)
    }

    /// [`AnalysisContext::build_obs`] with an explicit [`KernelPolicy`].
    ///
    /// The policy selects the family resolver (`Reference` keeps the
    /// two-sweep PR 6 resolver; `Auto`/`Chunked` run the fused
    /// single-sweep variant), overrides the chunk granularity of the
    /// family jobs when `Chunked`, and is recorded on the context so
    /// the gated pass bodies pick their kernels accordingly. Every
    /// policy builds a bit-identical context and report.
    pub fn build_kernels(
        dataset: &'a Dataset,
        spec: ArimaSpec,
        parallel: bool,
        policy: KernelPolicy,
        obs: &Obs,
    ) -> AnalysisContext<'a> {
        let bot_span = obs.span("context/bot_table");
        let bot_table = BotTable::build(dataset);
        drop(bot_span);
        let src_span = obs.span("context/source_table");
        let sources = SourceTable::build(dataset, &bot_table, parallel);
        drop(src_span);
        let window = dataset.window();
        let attacks = dataset.attacks();
        obs.gauge("context/attacks").set(attacks.len() as u64);
        obs.gauge("context/bots").set(bot_table.len() as u64);
        obs.gauge("context/source_dict_ips")
            .set(sources.dict_len() as u64);
        obs.gauge("context/participations")
            .set(sources.participations() as u64);
        obs.gauge("context/unresolved_sources")
            .set(sources.unresolved_total());

        let timeline_span = obs.span("context/timelines");
        let mut durations = Vec::with_capacity(attacks.len());
        let mut all_starts = Vec::with_capacity(attacks.len());
        for a in attacks {
            durations.push(a.duration().as_f64());
            all_starts.push(a.start);
        }
        // Target timelines columnar-style: radix-sort packed
        // `(target, index)` keys and slice the runs, instead of a hash
        // map of growing vectors. The stable sort keeps each target's
        // attack indices ascending — the same order the hash-map build
        // produces after its final sort by target.
        let mut keyed: Vec<u64> = attacks
            .iter()
            .enumerate()
            .map(|(i, a)| (u64::from(a.target_ip.value()) << 32) | i as u64)
            .collect();
        radix_sort_by_ip(&mut keyed);
        let mut target_timelines: Vec<TargetTimeline> = Vec::new();
        let mut run = 0;
        while run < keyed.len() {
            let target = (keyed[run] >> 32) as u32;
            let mut end = run;
            while end < keyed.len() && (keyed[end] >> 32) as u32 == target {
                end += 1;
            }
            target_timelines.push(TargetTimeline {
                target: IpAddr4(target),
                attacks: keyed[run..end].iter().map(|&k| k as u32 as usize).collect(),
            });
            run = end;
        }
        drop(timeline_span);

        let num_weeks = window.num_weeks();

        // Per-family fan-out with chunked intra-family resolution: the
        // big families split into enough chunks to keep every worker
        // busy; a shared counter hands out chunks dynamically.
        let family_span = obs.span("context/family_resolution");
        let kernel = KernelCounters::default();
        let chunk_hist = obs.histogram("context/chunk_us");
        let pieces = if parallel { worker_count() } else { 1 };
        let mut jobs: Vec<(usize, &[u32])> = Vec::new();
        for (slot, family) in Family::ACTIVE.into_iter().enumerate() {
            let indices = dataset.attack_indices_of(family);
            let ranges = match policy {
                // A forced chunk length overrides the per-worker cut —
                // the proptests force degenerate chunkings through it.
                KernelPolicy::Chunked(_) => policy.chunks(indices.len()),
                _ => chunk_ranges(indices.len(), pieces),
            };
            for r in ranges {
                jobs.push((slot, &indices[r]));
            }
        }
        // Each worker owns one reusable week-stamp buffer across all the
        // chunks it drains ([`WeekStamp`] hands every chunk a fresh tag
        // range, so no re-zeroing between chunks).
        let resolver = if policy.is_reference() {
            resolve_family_chunk
        } else {
            resolve_family_chunk_fused
        };
        let run_job = |&(slot, indices): &(usize, &[u32]), stamp: &mut WeekStamp| {
            let t0 = obs.now_us();
            let chunk = resolver(
                dataset, &bot_table, &sources, indices, num_weeks, stamp, &kernel,
            );
            chunk_hist.record(obs.now_us().saturating_sub(t0));
            (slot, chunk)
        };
        let workers = worker_count().min(jobs.len());
        obs.gauge("context/family_jobs").set(jobs.len() as u64);
        obs.gauge("context/workers")
            .set(if parallel && workers > 1 {
                workers as u64
            } else {
                1
            });
        let mut outs: Vec<(usize, usize, FamilyChunk)> = if parallel && workers > 1 {
            let next = AtomicUsize::new(0);
            let mut collected: Vec<(usize, usize, FamilyChunk)> =
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            scope.spawn(|_| {
                                let mut local = Vec::new();
                                let mut stamp = WeekStamp::default();
                                loop {
                                    let j = next.fetch_add(1, Ordering::Relaxed);
                                    let Some(job) = jobs.get(j) else {
                                        break;
                                    };
                                    let (slot, chunk) = run_job(job, &mut stamp);
                                    local.push((j, slot, chunk));
                                }
                                local
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("family resolution panicked"))
                        .collect()
                })
                .expect("family resolution scope panicked");
            collected.sort_unstable_by_key(|&(j, _, _)| j);
            collected
        } else {
            let mut stamp = WeekStamp::default();
            jobs.iter()
                .enumerate()
                .map(|(j, job)| {
                    let (slot, chunk) = run_job(job, &mut stamp);
                    (j, slot, chunk)
                })
                .collect()
        };

        // Deterministic merge: jobs are slot-major and sorted by job id,
        // so each family's chunks concatenate in its trace order.
        let mut families: Vec<FamilyContext> = Family::ACTIVE
            .into_iter()
            .map(|family| FamilyContext {
                family,
                starts: Vec::new(),
                dispersion: FamilyDispersion {
                    family,
                    series: Vec::new(),
                    active_days: 0,
                },
                weekly_bots: vec![IpMap::default(); num_weeks],
            })
            .collect();
        let mut day_sets: Vec<HashSet<usize>> = vec![HashSet::new(); families.len()];
        for (_, slot, chunk) in outs.drain(..) {
            let fc = &mut families[slot];
            fc.starts.extend(chunk.starts);
            fc.dispersion.series.extend(chunk.series);
            day_sets[slot].extend(chunk.days);
            for (w, map) in chunk.weekly.into_iter().enumerate() {
                if fc.weekly_bots[w].is_empty() {
                    fc.weekly_bots[w] = map;
                } else {
                    fc.weekly_bots[w].extend(map);
                }
            }
        }
        for (fc, days) in families.iter_mut().zip(day_sets) {
            fc.dispersion.active_days = days.len();
        }
        drop(family_span);
        obs.counter("geo/dispersion_snapshots")
            .add(kernel.snapshots());
        obs.counter("geo/dispersion_points").add(kernel.points());
        obs.counter("geo/dispersion_degenerate")
            .add(kernel.degenerate());

        AnalysisContext {
            dataset,
            spec,
            bot_table,
            sources,
            durations,
            all_starts,
            target_timelines,
            kernels: policy,
            families,
        }
    }

    /// The pre-columnar build: per-lookup hash join through
    /// [`BotIndex`], scalar trigonometry per attack-participation,
    /// serial per-family loop. Kept as the reference the equivalence
    /// suite holds the columnar build bit-equal to, and as the baseline
    /// of `repro --ctx-bench`. (The columnar tables are still attached
    /// so the context stays fully functional for every pass.)
    pub fn build_reference(dataset: &'a Dataset, spec: ArimaSpec) -> AnalysisContext<'a> {
        let bots = BotIndex::build(dataset);
        let bot_table = BotTable::build(dataset);
        let sources = SourceTable::build(dataset, &bot_table, false);
        let window = dataset.window();
        let attacks = dataset.attacks();

        let mut durations = Vec::with_capacity(attacks.len());
        let mut all_starts = Vec::with_capacity(attacks.len());
        let mut by_target: IpMap<Vec<usize>> = IpMap::default();
        for (i, a) in attacks.iter().enumerate() {
            durations.push(a.duration().as_f64());
            all_starts.push(a.start);
            by_target.entry(a.target_ip).or_default().push(i);
        }
        let mut target_timelines: Vec<TargetTimeline> = by_target
            .into_iter()
            .map(|(target, attacks)| TargetTimeline { target, attacks })
            .collect();
        target_timelines.sort_by_key(|t| t.target);

        let num_weeks = window.num_weeks();
        let families = Family::ACTIVE
            .into_iter()
            .map(|family| {
                let mut starts = Vec::new();
                let mut series = Vec::new();
                let mut days = HashSet::new();
                let mut weekly: Vec<IpMap<CountryCode>> = vec![IpMap::default(); num_weeks];
                for a in dataset.attacks_of(family) {
                    starts.push(a.start);
                    let week = window.week_index(a.start);
                    let mut coords = Vec::with_capacity(a.sources.len());
                    for &ip in &a.sources {
                        let Some((cc, c)) = bots.lookup(ip) else {
                            continue;
                        };
                        coords.push(c);
                        if let Some(w) = week {
                            weekly[w].insert(ip, cc);
                        }
                    }
                    let Some(d) = dispersion(&coords) else {
                        continue;
                    };
                    if let Some(day) = window.day_index(a.start) {
                        days.insert(day);
                    }
                    series.push((a.start, d.value()));
                }
                FamilyContext {
                    family,
                    starts,
                    dispersion: FamilyDispersion {
                        family,
                        series,
                        active_days: days.len(),
                    },
                    weekly_bots: weekly,
                }
            })
            .collect();

        AnalysisContext {
            dataset,
            spec,
            bot_table,
            sources,
            durations,
            all_starts,
            target_timelines,
            kernels: KernelPolicy::Reference,
            families,
        }
    }

    /// Assembles a context from precomputed parts — the exit point of
    /// the epoch fold ([`crate::epoch::EpochContext`]). Callers are
    /// responsible for upholding the module invariants; the epoch
    /// equivalence suite pins the fold's output bit-equal to
    /// [`AnalysisContext::build`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        dataset: &'a Dataset,
        spec: ArimaSpec,
        bot_table: BotTable,
        sources: SourceTable,
        durations: Vec<f64>,
        all_starts: Vec<Timestamp>,
        target_timelines: Vec<TargetTimeline>,
        families: Vec<FamilyContext>,
    ) -> AnalysisContext<'a> {
        AnalysisContext {
            dataset,
            spec,
            bot_table,
            sources,
            durations,
            all_starts,
            target_timelines,
            kernels: KernelPolicy::Auto,
            families,
        }
    }

    /// Sets the pass-body kernel policy (builder style) — the epoch
    /// fold's exit points assemble contexts through
    /// [`AnalysisContext::from_parts`] and stamp the pipeline's policy
    /// on afterwards.
    pub fn with_kernels(mut self, kernels: KernelPolicy) -> AnalysisContext<'a> {
        self.kernels = kernels;
        self
    }

    /// The per-family slots, in [`Family::ACTIVE`] order.
    pub fn families(&self) -> &[FamilyContext] {
        &self.families
    }

    /// One active family's slot (`None` for inactive families).
    ///
    /// `Family::ACTIVE` is a prefix of `Family::ALL`, so an active
    /// family's dense [`Family::index`] *is* its slot position; inactive
    /// families index past the end of the slot vector.
    pub fn family(&self, family: Family) -> Option<&FamilyContext> {
        let fc = self.families.get(family.index())?;
        debug_assert_eq!(fc.family, family);
        Some(fc)
    }

    /// One active family's dispersion series.
    pub fn dispersion_of(&self, family: Family) -> Option<&FamilyDispersion> {
        self.family(family).map(|fc| &fc.dispersion)
    }

    /// Asserts that `self` and `other` carry the same analysis inputs,
    /// with the dispersion series compared **bit-for-bit**. Used by the
    /// equivalence suite and `repro --ctx-bench --smoke` to hold the
    /// parallel and reference builds to the serial columnar build.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first divergence.
    pub fn assert_same_analysis(&self, other: &AnalysisContext<'_>) {
        assert_eq!(self.durations, other.durations, "durations diverged");
        assert_eq!(self.all_starts, other.all_starts, "all_starts diverged");
        assert_eq!(
            self.target_timelines, other.target_timelines,
            "target timelines diverged"
        );
        assert_eq!(self.families.len(), other.families.len());
        for (a, b) in self.families.iter().zip(&other.families) {
            assert_eq!(a.family, b.family);
            assert_eq!(a.starts, b.starts, "{:?}: starts diverged", a.family);
            assert_eq!(
                a.dispersion.active_days, b.dispersion.active_days,
                "{:?}: active days diverged",
                a.family
            );
            assert_eq!(
                a.dispersion.series.len(),
                b.dispersion.series.len(),
                "{:?}: series length diverged",
                a.family
            );
            for (x, y) in a.dispersion.series.iter().zip(&b.dispersion.series) {
                assert_eq!(x.0, y.0, "{:?}: series timestamps diverged", a.family);
                assert_eq!(
                    x.1.to_bits(),
                    y.1.to_bits(),
                    "{:?}: dispersion bits diverged ({} vs {})",
                    a.family,
                    x.1,
                    y.1
                );
            }
            assert_eq!(
                a.weekly_bots, b.weekly_bots,
                "{:?}: weekly bot maps diverged",
                a.family
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};
    use crate::source::dispersion::qualifying_families;
    use crate::source::shift::ShiftAnalysis;

    #[test]
    fn vectors_follow_trace_order() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Pandora, 2, 120, 700, 1),
            attack(Family::Dirtjumper, 3, 5_000, 900, 2),
        ]);
        let ctx = AnalysisContext::new(&ds);
        assert_eq!(ctx.durations, vec![600.0, 700.0, 900.0]);
        assert_eq!(
            ctx.all_starts,
            ds.attacks().iter().map(|a| a.start).collect::<Vec<_>>()
        );
        // Two targets, sorted by IP, indices ascending.
        assert_eq!(ctx.target_timelines.len(), 2);
        assert!(ctx.target_timelines[0].target < ctx.target_timelines[1].target);
        assert_eq!(ctx.target_timelines[0].attacks, vec![0, 1]);
        assert_eq!(ctx.target_timelines[1].attacks, vec![2]);
        // The CSR join covers every participation.
        assert_eq!(
            ctx.sources.participations(),
            ds.attacks().iter().map(|a| a.sources.len()).sum::<usize>()
        );
    }

    #[test]
    fn family_slots_cover_active_families() {
        let ds = dataset(vec![attack(Family::Pandora, 1, 100, 60, 1)]);
        let ctx = AnalysisContext::new(&ds);
        assert_eq!(ctx.families().len(), Family::ACTIVE.len());
        let fc = ctx.family(Family::Pandora).unwrap();
        assert_eq!(fc.starts, vec![Timestamp(100)]);
        assert!(ctx.dispersion_of(Family::Pandora).is_some());
        // The slot lookup is a direct index: every active family's slot
        // holds that family, inactive families have none.
        for family in Family::ACTIVE {
            assert_eq!(ctx.family(family).unwrap().family, family);
        }
        for family in &Family::ALL[Family::ACTIVE.len()..] {
            assert!(ctx.family(*family).is_none());
        }
    }

    #[test]
    fn dispersion_matches_standalone_compute() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Pandora, 2, 120, 700, 1),
        ]);
        let ctx = AnalysisContext::new(&ds);
        let bots = BotIndex::build(&ds);
        for family in Family::ACTIVE {
            let standalone = FamilyDispersion::compute(&ds, &bots, family);
            assert_eq!(ctx.dispersion_of(family), Some(&standalone));
        }
        // And the shared join agrees with the standalone shift analysis.
        assert_eq!(
            ShiftAnalysis::compute_ctx(&ctx),
            ShiftAnalysis::compute(&ds, &bots)
        );
        assert_eq!(
            crate::source::dispersion::qualifying_families_ctx(&ctx),
            qualifying_families(&ds, &bots)
        );
    }

    #[test]
    fn parallel_serial_and_reference_builds_agree() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Dirtjumper, 2, 150, 600, 1),
            attack(Family::Pandora, 3, 120, 700, 1),
            attack(Family::Pandora, 4, 900, 700, 2),
            attack(Family::Optima, 5, 1_500, 300, 2),
        ]);
        let serial = AnalysisContext::build_opts(&ds, ArimaSpec::DEFAULT, false);
        let parallel = AnalysisContext::build_opts(&ds, ArimaSpec::DEFAULT, true);
        let reference = AnalysisContext::build_reference(&ds, ArimaSpec::DEFAULT);
        serial.assert_same_analysis(&parallel);
        serial.assert_same_analysis(&reference);
    }

    #[test]
    fn instrumented_build_is_identical_and_records_stages() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Pandora, 2, 120, 700, 1),
            attack(Family::Pandora, 3, 900, 700, 2),
        ]);
        let obs = Obs::enabled();
        let instrumented = AnalysisContext::build_obs(&ds, ArimaSpec::DEFAULT, true, &obs);
        let quiet = AnalysisContext::build_opts(&ds, ArimaSpec::DEFAULT, true);
        instrumented.assert_same_analysis(&quiet);
        let t = obs.finish(true);
        for stage in [
            "context/bot_table",
            "context/source_table",
            "context/timelines",
            "context/family_resolution",
        ] {
            assert!(t.span(stage).is_some(), "missing build stage span {stage}");
        }
        assert_eq!(
            t.metrics.gauge("context/attacks"),
            Some(ds.attacks().len() as u64)
        );
        assert_eq!(
            t.metrics.gauge("context/participations"),
            Some(instrumented.sources.participations() as u64)
        );
        // Every chunk landed in the histogram, and the kernel tallied
        // one snapshot per series point (plus any degenerate ones).
        let jobs = t.metrics.gauge("context/family_jobs").unwrap();
        let hist = t
            .metrics
            .histograms
            .iter()
            .find(|h| h.name == "context/chunk_us")
            .unwrap();
        assert_eq!(hist.histogram.count, jobs);
        let series: u64 = instrumented
            .families()
            .iter()
            .map(|fc| fc.dispersion.series.len() as u64)
            .sum();
        let snaps = t.metrics.counter("geo/dispersion_snapshots").unwrap();
        let degen = t.metrics.counter("geo/dispersion_degenerate").unwrap();
        assert_eq!(snaps - degen, series);
    }

    #[test]
    fn empty_dataset_builds() {
        let ds = dataset(vec![]);
        let ctx = AnalysisContext::new(&ds);
        assert!(ctx.durations.is_empty());
        assert!(ctx.target_timelines.is_empty());
        assert_eq!(ctx.families().len(), Family::ACTIVE.len());
        assert!(ctx.bot_table.is_empty());
        assert_eq!(ctx.sources.participations(), 0);
    }
}
