//! Raw-feed preprocessing: attack-record merging.
//!
//! §II-D of the paper: *"for attacks whose interval exceeds 60 seconds,
//! we consider them as different attacks. Note that we defined this
//! attack interval for an in-depth study of the periodic patterns"* — a
//! raw feed may log one logical attack as several records when traffic
//! dips briefly; the paper's preparation step merges records from the
//! same botnet against the same target whose gap is within the interval
//! threshold. Generated traces are already merged; this module is for
//! raw imports (e.g. via `ddos_schema::csv`).

use std::collections::HashMap;

use ddos_schema::{AttackRecord, BotnetId, IpAddr4, Seconds};

/// The paper's record-merging threshold (§II-D).
pub const MERGE_GAP_S: i64 = 60;

/// Merges raw records of the same `(botnet, target)` whose inter-record
/// gap (next start − previous end) is at most `max_gap`.
///
/// The merged record keeps the first record's identity and metadata,
/// spans from the earliest start to the latest end, and unions the
/// source lists. Records are returned in start order. Input order does
/// not matter.
pub fn merge_attack_records(mut records: Vec<AttackRecord>, max_gap: Seconds) -> Vec<AttackRecord> {
    records.sort_by_key(|a| (a.start, a.id));
    let mut chains: HashMap<(BotnetId, IpAddr4), usize> = HashMap::new();
    let mut out: Vec<AttackRecord> = Vec::with_capacity(records.len());
    for rec in records {
        let key = (rec.botnet, rec.target_ip);
        if let Some(&idx) = chains.get(&key) {
            let prev = &mut out[idx];
            if (rec.start - prev.end).get() <= max_gap.get() {
                // Continuation of the same logical attack.
                prev.end = prev.end.max(rec.end);
                prev.sources.extend(rec.sources);
                prev.sources.sort_unstable();
                prev.sources.dedup();
                continue;
            }
        }
        chains.insert(key, out.len());
        out.push(rec);
    }
    out.sort_by_key(|a| (a.start, a.id));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::attack;
    use ddos_schema::Family;

    fn ip(last: u8) -> IpAddr4 {
        IpAddr4::from_octets(203, 0, 113, last)
    }

    #[test]
    fn close_records_merge() {
        // [100, 700] then [750, 1350]: gap 50 ≤ 60 → one attack.
        let mut a = attack(Family::Dirtjumper, 1, 100, 600, 1);
        a.sources = vec![ip(1)];
        let mut b = attack(Family::Dirtjumper, 2, 750, 600, 1);
        b.sources = vec![ip(2), ip(1)];
        let merged = merge_attack_records(vec![a, b], Seconds(MERGE_GAP_S));
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].start.unix(), 100);
        assert_eq!(merged[0].end.unix(), 1_350);
        assert_eq!(merged[0].sources, vec![ip(1), ip(2)]);
    }

    #[test]
    fn distant_records_stay_separate() {
        let a = attack(Family::Dirtjumper, 1, 100, 600, 1); // ends 700
        let b = attack(Family::Dirtjumper, 2, 800, 600, 1); // gap 100 > 60
        let merged = merge_attack_records(vec![a, b], Seconds(MERGE_GAP_S));
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn different_botnets_never_merge() {
        let a = attack(Family::Dirtjumper, 1, 100, 600, 1);
        let mut b = attack(Family::Dirtjumper, 2, 710, 600, 1);
        b.botnet = ddos_schema::BotnetId(999);
        let merged = merge_attack_records(vec![a, b], Seconds(MERGE_GAP_S));
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn different_targets_never_merge() {
        let a = attack(Family::Dirtjumper, 1, 100, 600, 1);
        let b = attack(Family::Dirtjumper, 2, 710, 600, 2);
        let merged = merge_attack_records(vec![a, b], Seconds(MERGE_GAP_S));
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn chains_merge_transitively() {
        // Three records each 50 s apart: one logical attack.
        let a = attack(Family::Ddoser, 1, 0, 100, 1); // ends 100
        let b = attack(Family::Ddoser, 2, 150, 100, 1); // ends 250
        let c = attack(Family::Ddoser, 3, 300, 100, 1); // ends 400
        let merged = merge_attack_records(vec![c, a, b], Seconds(MERGE_GAP_S));
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].end.unix(), 400);
    }

    #[test]
    fn overlapping_records_merge_and_keep_latest_end() {
        let a = attack(Family::Dirtjumper, 1, 0, 1_000, 1); // ends 1000
        let b = attack(Family::Dirtjumper, 2, 500, 100, 1); // ends 600, inside a
        let merged = merge_attack_records(vec![a, b], Seconds(MERGE_GAP_S));
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].end.unix(), 1_000);
    }

    #[test]
    fn input_order_is_irrelevant() {
        let a = attack(Family::Dirtjumper, 1, 100, 600, 1);
        let b = attack(Family::Dirtjumper, 2, 750, 600, 1);
        let fwd = merge_attack_records(vec![a.clone(), b.clone()], Seconds(MERGE_GAP_S));
        let rev = merge_attack_records(vec![b, a], Seconds(MERGE_GAP_S));
        assert_eq!(fwd, rev);
    }

    #[test]
    fn empty_input() {
        assert!(merge_attack_records(vec![], Seconds(MERGE_GAP_S)).is_empty());
    }
}
