//! Shared joins and helpers used across the analyses.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use ddos_schema::{CountryCode, Dataset, IpAddr4, LatLon};

/// A hasher specialized for [`IpAddr4`] keys (a `u32` newtype): one
/// Fibonacci multiply plus an xor-shift, instead of SipHash. The context
/// build and the defense simulations perform millions of IP map
/// operations per trace; HashDoS resistance buys nothing against a fixed
/// research dataset, so they trade it for throughput.
///
/// Hash maps keyed this way have a different iteration order than
/// SipHash maps — only use [`IpMap`]/[`IpSet`] where results are
/// independent of iteration order (membership tests, or maps that get
/// sorted before anything order-sensitive reads them).
#[derive(Debug, Clone, Copy, Default)]
pub struct IpHasher(u64);

impl Hasher for IpHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_u64(&mut self, n: u64) {
        // Mix the previous state in so composite keys still distribute.
        let x = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = x ^ (x >> 29);
    }
}

/// Hash map keyed by [`IpAddr4`] using [`IpHasher`].
pub type IpMap<V> = HashMap<IpAddr4, V, BuildHasherDefault<IpHasher>>;

/// Hash set of [`IpAddr4`] using [`IpHasher`].
pub type IpSet = HashSet<IpAddr4, BuildHasherDefault<IpHasher>>;

/// The `Botlist` join: bot IP → (country, coordinates).
///
/// Built once and shared; the source analyses resolve every attack's
/// participants through it (the paper's feed geolocates at collection
/// time, so the mapping is stable — §II-D). Keyed through [`IpMap`] —
/// this is exactly the hot map [`IpHasher`] was built for; lookups are
/// membership-style and never iterate, so the hasher's different
/// iteration order is unobservable.
#[derive(Debug, Clone, Default)]
pub struct BotIndex {
    map: IpMap<(CountryCode, LatLon)>,
}

impl BotIndex {
    /// Builds the index from a dataset's bot records.
    pub fn build(ds: &Dataset) -> BotIndex {
        let mut map = IpMap::with_capacity_and_hasher(ds.bots().len(), Default::default());
        for bot in ds.bots() {
            map.insert(bot.ip, (bot.location.country, bot.location.coords));
        }
        BotIndex { map }
    }

    /// Resolves one address.
    pub fn lookup(&self, ip: IpAddr4) -> Option<(CountryCode, LatLon)> {
        self.map.get(&ip).copied()
    }

    /// Coordinates of every resolvable address in `ips`.
    pub fn coords_of(&self, ips: &[IpAddr4]) -> Vec<LatLon> {
        ips.iter()
            .filter_map(|ip| self.map.get(ip).map(|&(_, c)| c))
            .collect()
    }

    /// Countries of every resolvable address in `ips`.
    pub fn countries_of(&self, ips: &[IpAddr4]) -> Vec<CountryCode> {
        ips.iter()
            .filter_map(|ip| self.map.get(ip).map(|&(cc, _)| cc))
            .collect()
    }

    /// Number of indexed bots.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddos_schema::record::{BotRecord, Location};
    use ddos_schema::{Asn, BotnetId, CityId, DatasetBuilder, Family, OrgId, Timestamp, Window};

    fn dataset_with_bot(ip: IpAddr4) -> Dataset {
        let window = Window::new(Timestamp(0), Timestamp(1_000)).unwrap();
        let mut b = DatasetBuilder::new(window);
        b.push_bot(BotRecord {
            ip,
            botnet: BotnetId(1),
            family: Family::Pandora,
            location: Location {
                country: CountryCode::literal("RU"),
                city: CityId(3),
                org: OrgId(4),
                asn: Asn(5),
                coords: LatLon::new_unchecked(55.0, 37.0),
            },
            first_seen: Timestamp(0),
            last_seen: Timestamp(10),
        })
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lookup_and_bulk_resolution() {
        let ip = IpAddr4::from_octets(203, 0, 113, 1);
        let other = IpAddr4::from_octets(203, 0, 113, 2);
        let idx = BotIndex::build(&dataset_with_bot(ip));
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
        let (cc, coords) = idx.lookup(ip).unwrap();
        assert_eq!(cc, CountryCode::literal("RU"));
        assert_eq!(coords.lat, 55.0);
        assert!(idx.lookup(other).is_none());
        assert_eq!(idx.coords_of(&[ip, other]).len(), 1);
        assert_eq!(idx.countries_of(&[ip, other]), vec![cc]);
    }

    #[test]
    fn ip_hasher_distributes_and_mixes_state() {
        use std::hash::Hash;
        // Same key → same hash; different keys → (here) different hashes.
        let hash_of = |ip: IpAddr4| {
            let mut h = IpHasher::default();
            ip.hash(&mut h);
            h.finish()
        };
        let a = IpAddr4::from_octets(203, 0, 113, 1);
        let b = IpAddr4::from_octets(203, 0, 113, 2);
        assert_eq!(hash_of(a), hash_of(a));
        assert_ne!(hash_of(a), hash_of(b));

        // The map behaves like a std map for membership.
        let mut set = IpSet::default();
        assert!(set.insert(a));
        assert!(!set.insert(a));
        assert!(set.contains(&a));
        assert!(!set.contains(&b));
        let mut map: IpMap<u32> = IpMap::default();
        map.insert(a, 1);
        map.insert(b, 2);
        assert_eq!(map.get(&a), Some(&1));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn empty_dataset_empty_index() {
        let window = Window::new(Timestamp(0), Timestamp(1)).unwrap();
        let ds = DatasetBuilder::new(window).build().unwrap();
        let idx = BotIndex::build(&ds);
        assert!(idx.is_empty());
    }
}
