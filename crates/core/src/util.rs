//! Shared joins and helpers used across the analyses.

use std::collections::HashMap;

use ddos_schema::{CountryCode, Dataset, IpAddr4, LatLon};

/// The `Botlist` join: bot IP → (country, coordinates).
///
/// Built once and shared; the source analyses resolve every attack's
/// participants through it (the paper's feed geolocates at collection
/// time, so the mapping is stable — §II-D).
#[derive(Debug, Clone, Default)]
pub struct BotIndex {
    map: HashMap<IpAddr4, (CountryCode, LatLon)>,
}

impl BotIndex {
    /// Builds the index from a dataset's bot records.
    pub fn build(ds: &Dataset) -> BotIndex {
        let mut map = HashMap::with_capacity(ds.bots().len());
        for bot in ds.bots() {
            map.insert(bot.ip, (bot.location.country, bot.location.coords));
        }
        BotIndex { map }
    }

    /// Resolves one address.
    pub fn lookup(&self, ip: IpAddr4) -> Option<(CountryCode, LatLon)> {
        self.map.get(&ip).copied()
    }

    /// Coordinates of every resolvable address in `ips`.
    pub fn coords_of(&self, ips: &[IpAddr4]) -> Vec<LatLon> {
        ips.iter()
            .filter_map(|ip| self.map.get(ip).map(|&(_, c)| c))
            .collect()
    }

    /// Countries of every resolvable address in `ips`.
    pub fn countries_of(&self, ips: &[IpAddr4]) -> Vec<CountryCode> {
        ips.iter()
            .filter_map(|ip| self.map.get(ip).map(|&(cc, _)| cc))
            .collect()
    }

    /// Number of indexed bots.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddos_schema::record::{BotRecord, Location};
    use ddos_schema::{Asn, BotnetId, CityId, DatasetBuilder, Family, OrgId, Timestamp, Window};

    fn dataset_with_bot(ip: IpAddr4) -> Dataset {
        let window = Window::new(Timestamp(0), Timestamp(1_000)).unwrap();
        let mut b = DatasetBuilder::new(window);
        b.push_bot(BotRecord {
            ip,
            botnet: BotnetId(1),
            family: Family::Pandora,
            location: Location {
                country: CountryCode::literal("RU"),
                city: CityId(3),
                org: OrgId(4),
                asn: Asn(5),
                coords: LatLon::new_unchecked(55.0, 37.0),
            },
            first_seen: Timestamp(0),
            last_seen: Timestamp(10),
        })
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lookup_and_bulk_resolution() {
        let ip = IpAddr4::from_octets(203, 0, 113, 1);
        let other = IpAddr4::from_octets(203, 0, 113, 2);
        let idx = BotIndex::build(&dataset_with_bot(ip));
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
        let (cc, coords) = idx.lookup(ip).unwrap();
        assert_eq!(cc, CountryCode::literal("RU"));
        assert_eq!(coords.lat, 55.0);
        assert!(idx.lookup(other).is_none());
        assert_eq!(idx.coords_of(&[ip, other]).len(), 1);
        assert_eq!(idx.countries_of(&[ip, other]), vec![cc]);
    }

    #[test]
    fn empty_dataset_empty_index() {
        let window = Window::new(Timestamp(0), Timestamp(1)).unwrap();
        let ds = DatasetBuilder::new(window).build().unwrap();
        let idx = BotIndex::build(&ds);
        assert!(idx.is_empty());
    }
}
