//! §III-C — attack durations (Figs. 6–7).

use ddos_schema::{Dataset, Family, Timestamp};
use ddos_stats::{descriptive, Ecdf};
use serde::{Deserialize, Serialize};

use crate::kernels::KernelPolicy;

/// Duration analysis over a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurationAnalysis {
    /// `(start, duration_s)` per attack in time order — Fig. 6's scatter.
    pub series: Vec<(Timestamp, f64)>,
    /// Mean duration (paper: 10,308 s).
    pub mean: f64,
    /// Median duration (paper: 1,766 s).
    pub median: f64,
    /// Population standard deviation (paper: 18,475 s).
    pub std_dev: f64,
    /// 80th percentile (paper: 13,882 s ≈ four hours).
    pub p80: f64,
}

impl DurationAnalysis {
    /// Computes duration statistics over all attacks; `None` for an
    /// empty trace.
    pub fn compute(ds: &Dataset) -> Option<DurationAnalysis> {
        Self::compute_filtered(ds, None)
    }

    /// Same, restricted to one family.
    pub fn compute_for(ds: &Dataset, family: Family) -> Option<DurationAnalysis> {
        Self::compute_filtered(ds, Some(family))
    }

    /// Context-based variant of [`DurationAnalysis::compute`]: reuses
    /// the start and duration vectors precomputed in the analysis
    /// context (both in trace order, so the series is identical).
    pub fn compute_ctx(ctx: &crate::context::AnalysisContext) -> Option<DurationAnalysis> {
        let series: Vec<(Timestamp, f64)> = ctx
            .all_starts
            .iter()
            .copied()
            .zip(ctx.durations.iter().copied())
            .collect();
        if ctx.kernels.is_reference() {
            Self::from_series(series)
        } else {
            Self::from_series_kernel(series, ctx.kernels)
        }
    }

    fn compute_filtered(ds: &Dataset, family: Option<Family>) -> Option<DurationAnalysis> {
        let series: Vec<(Timestamp, f64)> = ds
            .attacks()
            .iter()
            .filter(|a| family.map_or(true, |f| f == a.family))
            .map(|a| (a.start, a.duration().as_f64()))
            .collect();
        Self::from_series(series)
    }

    fn from_series(series: Vec<(Timestamp, f64)>) -> Option<DurationAnalysis> {
        if series.is_empty() {
            return None;
        }
        let xs: Vec<f64> = series.iter().map(|&(_, d)| d).collect();
        Some(DurationAnalysis {
            mean: descriptive::mean(&xs)?,
            median: descriptive::median(&xs)?,
            std_dev: descriptive::std_dev_population(&xs)?,
            p80: descriptive::quantile(&xs, 0.8)?,
            series,
        })
    }

    /// Kernel variant of [`DurationAnalysis::from_series`]: the duration
    /// sample is extracted as per-chunk runs concatenated in chunk order
    /// (identical to the sequential extraction), the mean and deviation
    /// read it in that original order, and one shared sort feeds both
    /// quantiles — the reference sorts the same sample with the same
    /// comparator twice, so every statistic is bit-identical.
    fn from_series_kernel(
        series: Vec<(Timestamp, f64)>,
        policy: KernelPolicy,
    ) -> Option<DurationAnalysis> {
        if series.is_empty() {
            return None;
        }
        let mut xs: Vec<f64> = Vec::with_capacity(series.len());
        for range in policy.chunks(series.len()) {
            xs.extend(series[range].iter().map(|&(_, d)| d));
        }
        let mean = descriptive::mean(&xs)?;
        let std_dev = descriptive::std_dev_population(&xs)?;
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in duration sample"));
        Some(DurationAnalysis {
            mean,
            median: descriptive::quantile_sorted(&xs, 0.5),
            std_dev,
            p80: descriptive::quantile_sorted(&xs, 0.8),
            series,
        })
    }

    /// The duration ECDF (Fig. 7).
    pub fn cdf(&self) -> Ecdf {
        let xs: Vec<f64> = self.series.iter().map(|&(_, d)| d).collect();
        Ecdf::new(&xs).expect("non-empty by construction")
    }

    /// Fraction of attacks shorter than `seconds` (the paper checks the
    /// four-hour point and the sub-minute share that justifies the 60 s
    /// attack-separation rule).
    pub fn fraction_under(&self, seconds: f64) -> f64 {
        let n = self.series.iter().filter(|&&(_, d)| d < seconds).count();
        n as f64 / self.series.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    #[test]
    fn statistics_over_known_durations() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 0, 100, 1),
            attack(Family::Dirtjumper, 2, 10, 200, 1),
            attack(Family::Dirtjumper, 3, 20, 600, 2),
        ]);
        let d = DurationAnalysis::compute(&ds).unwrap();
        assert_eq!(d.mean, 300.0);
        assert_eq!(d.median, 200.0);
        assert_eq!(d.series.len(), 3);
        assert!((d.fraction_under(250.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.fraction_under(50.0), 0.0);
        assert_eq!(d.fraction_under(1e9), 1.0);
    }

    #[test]
    fn cdf_matches_series() {
        let ds = dataset(vec![
            attack(Family::Pandora, 1, 0, 50, 1),
            attack(Family::Pandora, 2, 5, 150, 1),
        ]);
        let d = DurationAnalysis::compute(&ds).unwrap();
        let cdf = d.cdf();
        assert_eq!(cdf.eval(50.0), 0.5);
        assert_eq!(cdf.eval(150.0), 1.0);
    }

    #[test]
    fn kernel_statistics_match_reference_for_every_chunking() {
        let series: Vec<(Timestamp, f64)> = [100.0, 200.0, 200.0, 600.0, 50.0, 13_882.0]
            .iter()
            .enumerate()
            .map(|(i, &d)| (Timestamp(i as i64 * 10), d))
            .collect();
        let expect = DurationAnalysis::from_series(series.clone()).unwrap();
        for policy in [
            KernelPolicy::Auto,
            KernelPolicy::Chunked(1),
            KernelPolicy::Chunked(4),
            KernelPolicy::Chunked(100),
        ] {
            let got = DurationAnalysis::from_series_kernel(series.clone(), policy).unwrap();
            assert_eq!(got, expect, "{policy:?}");
        }
        assert!(DurationAnalysis::from_series_kernel(vec![], KernelPolicy::Auto).is_none());
    }

    #[test]
    fn family_filter_and_empty() {
        let ds = dataset(vec![attack(Family::Pandora, 1, 0, 50, 1)]);
        assert!(DurationAnalysis::compute_for(&ds, Family::Nitol).is_none());
        let d = DurationAnalysis::compute_for(&ds, Family::Pandora).unwrap();
        assert_eq!(d.series.len(), 1);
        assert_eq!(d.std_dev, 0.0);
        let empty = dataset(vec![]);
        assert!(DurationAnalysis::compute(&empty).is_none());
    }
}
