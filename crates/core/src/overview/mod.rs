//! §III — overview of the DDoS attacks: protocol mix, daily density,
//! inter-attack intervals, durations.

pub mod activity;
pub mod daily;
pub mod duration;
pub mod intervals;
pub mod protocols;

#[cfg(test)]
pub(crate) mod test_support {
    //! Hand-built miniature datasets for overview unit tests.

    use ddos_schema::record::Location;
    use ddos_schema::{
        Asn, AttackRecord, BotnetId, CityId, Dataset, DatasetBuilder, DdosId, Family, IpAddr4,
        LatLon, OrgId, Protocol, Timestamp, Window,
    };

    /// Window of 10 days starting at the epoch.
    pub fn window() -> Window {
        Window::new(Timestamp(0), Timestamp(10 * 86_400)).unwrap()
    }

    pub fn location(cc: &str, city: u32) -> Location {
        Location {
            country: cc.parse().unwrap(),
            city: CityId(city),
            org: OrgId(city),
            asn: Asn(64_000 + city),
            coords: LatLon::new_unchecked(10.0 + city as f64, 20.0),
        }
    }

    /// A minimal attack: family, id, start, duration, target ip last
    /// octet.
    pub fn attack(
        family: Family,
        id: u64,
        start: i64,
        duration: i64,
        target_octet: u8,
    ) -> AttackRecord {
        AttackRecord {
            id: DdosId(id),
            botnet: BotnetId(family.index() as u32 * 10 + 1),
            family,
            category: Protocol::Http,
            target_ip: IpAddr4::from_octets(198, 51, 100, target_octet),
            target: location("US", 1),
            start: Timestamp(start),
            end: Timestamp(start + duration),
            sources: vec![IpAddr4::from_octets(203, 0, 113, 1)],
        }
    }

    pub fn dataset(attacks: Vec<AttackRecord>) -> Dataset {
        let mut b = DatasetBuilder::new(window());
        b.extend_attacks(attacks).unwrap();
        b.build().unwrap()
    }
}
