//! Family activity levels (§III-A).
//!
//! *"botnet activity patterns are defined by both active time and the
//! attack volumes. For example, Dirtjumper presents most aggressiveness
//! due to its constant activities and major contributions to the DDoS
//! attacks. Blackenergy, on the other hand, only stays active for about
//! 1/3 of the period."* This module quantifies exactly that, plus the
//! population curves visible in the feed's hourly snapshots.

use ddos_schema::{Dataset, Family, Timestamp};
use serde::{Deserialize, Serialize};

/// Activity profile of one family over the window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FamilyActivity {
    /// The family.
    pub family: Family,
    /// Total attacks launched.
    pub attacks: usize,
    /// Days with at least one attack.
    pub active_days: usize,
    /// First attack day index, if any.
    pub first_day: Option<usize>,
    /// Last attack day index, if any.
    pub last_day: Option<usize>,
    /// Attacks per active day.
    pub attacks_per_active_day: f64,
    /// Active days over the whole window length (Blackenergy ≈ 1/3).
    pub duty_cycle: f64,
}

/// Computes activity profiles for all active families, most aggressive
/// (attack volume) first.
pub fn activity_levels(ds: &Dataset) -> Vec<FamilyActivity> {
    let window = ds.window();
    let total_days = window.num_days().max(1);
    let mut out: Vec<FamilyActivity> = Family::ACTIVE
        .into_iter()
        .map(|family| {
            let mut days = std::collections::HashSet::new();
            let mut attacks = 0usize;
            let mut first = None;
            let mut last = None;
            for a in ds.attacks_of(family) {
                attacks += 1;
                if let Some(d) = window.day_index(a.start) {
                    days.insert(d);
                    first = Some(first.map_or(d, |f: usize| f.min(d)));
                    last = Some(last.map_or(d, |l: usize| l.max(d)));
                }
            }
            let active_days = days.len();
            FamilyActivity {
                family,
                attacks,
                active_days,
                first_day: first,
                last_day: last,
                attacks_per_active_day: if active_days > 0 {
                    attacks as f64 / active_days as f64
                } else {
                    0.0
                },
                duty_cycle: active_days as f64 / total_days as f64,
            }
        })
        .collect();
    out.sort_by(|a, b| b.attacks.cmp(&a.attacks).then(a.family.cmp(&b.family)));
    out
}

/// The per-snapshot population curve of one family (from the feed's
/// hourly reports), `(instant, bots)` in time order. Empty when the
/// dataset carries no snapshots for the family.
pub fn population_series(ds: &Dataset, family: Family) -> Vec<(Timestamp, usize)> {
    ds.snapshots(family)
        .map(|series| {
            series
                .iter()
                .map(|s| (s.taken_at, s.population()))
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    #[test]
    fn volumes_and_days_counted() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 10, 1),
            attack(Family::Dirtjumper, 2, 200, 10, 1),
            attack(Family::Dirtjumper, 3, 86_400 + 100, 10, 1),
            attack(Family::Nitol, 4, 100, 10, 2),
        ]);
        let levels = activity_levels(&ds);
        // Sorted by volume: dirtjumper first.
        assert_eq!(levels[0].family, Family::Dirtjumper);
        assert_eq!(levels[0].attacks, 3);
        assert_eq!(levels[0].active_days, 2);
        assert_eq!(levels[0].first_day, Some(0));
        assert_eq!(levels[0].last_day, Some(1));
        assert!((levels[0].attacks_per_active_day - 1.5).abs() < 1e-12);
        assert!((levels[0].duty_cycle - 0.2).abs() < 1e-12); // 2 of 10 days
    }

    #[test]
    fn idle_families_report_zeroes() {
        let ds = dataset(vec![attack(Family::Dirtjumper, 1, 100, 10, 1)]);
        let levels = activity_levels(&ds);
        let optima = levels.iter().find(|l| l.family == Family::Optima).unwrap();
        assert_eq!(optima.attacks, 0);
        assert_eq!(optima.active_days, 0);
        assert_eq!(optima.first_day, None);
        assert_eq!(optima.attacks_per_active_day, 0.0);
    }

    #[test]
    fn population_series_empty_without_snapshots() {
        let ds = dataset(vec![]);
        assert!(population_series(&ds, Family::Pandora).is_empty());
    }

    #[test]
    fn all_active_families_present() {
        let ds = dataset(vec![]);
        assert_eq!(activity_levels(&ds).len(), Family::ACTIVE.len());
    }
}
