//! §III-B — attack intervals (Figs. 3–5) and concurrent attacks.

use std::collections::BTreeMap;

use ddos_schema::{Dataset, Family, Timestamp};
use ddos_stats::{descriptive, Ecdf};
use serde::{Deserialize, Serialize};

use crate::kernels::KernelPolicy;

/// Inter-attack intervals of one family, in chronological order of the
/// family's attacks (seconds; zero = simultaneous).
pub fn family_intervals(ds: &Dataset, family: Family) -> Vec<i64> {
    let starts: Vec<Timestamp> = ds.attacks_of(family).map(|a| a.start).collect();
    starts_to_intervals(&starts)
}

/// Inter-attack intervals across *all* attacks (the "all" series of
/// Fig. 3).
pub fn all_intervals(ds: &Dataset) -> Vec<i64> {
    let starts: Vec<Timestamp> = ds.attacks().iter().map(|a| a.start).collect();
    starts_to_intervals(&starts)
}

/// Inter-attack intervals of attacks on one target, across families.
pub fn target_intervals(ds: &Dataset, target: ddos_schema::IpAddr4) -> Vec<i64> {
    let starts: Vec<Timestamp> = ds.attacks_on(target).map(|a| a.start).collect();
    starts_to_intervals(&starts)
}

/// Consecutive differences of an ascending start-time series — the
/// interval sample every variant above reduces to. Public so the
/// pipeline can reuse the start vectors precomputed in the analysis
/// context.
pub fn starts_to_intervals(starts: &[Timestamp]) -> Vec<i64> {
    starts.windows(2).map(|w| (w[1] - w[0]).get()).collect()
}

/// Descriptive statistics of an interval sample (§III-B quotes mean
/// 3,060 s, std 39,140 s, 80th percentile 1,081 s for family-based
/// intervals).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalStats {
    /// Number of intervals.
    pub count: usize,
    /// Mean interval (seconds).
    pub mean: f64,
    /// Population standard deviation (seconds).
    pub std_dev: f64,
    /// 80th percentile (seconds).
    pub p80: f64,
    /// Longest interval (seconds) — the paper saw 59 days.
    pub max: f64,
    /// Fraction of exactly-simultaneous intervals (zero seconds).
    pub concurrent_fraction: f64,
}

impl IntervalStats {
    /// Computes the statistics; `None` for an empty sample.
    pub fn compute(intervals: &[i64]) -> Option<IntervalStats> {
        if intervals.is_empty() {
            return None;
        }
        let xs: Vec<f64> = intervals.iter().map(|&v| v as f64).collect();
        let zeros = intervals.iter().filter(|&&v| v == 0).count();
        Some(IntervalStats {
            count: xs.len(),
            mean: descriptive::mean(&xs)?,
            std_dev: descriptive::std_dev_population(&xs)?,
            p80: descriptive::quantile(&xs, 0.8)?,
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            concurrent_fraction: zeros as f64 / xs.len() as f64,
        })
    }

    /// The chunked interval kernel: per-chunk partials for the f64
    /// sample, the zero count, and the maximum — sample runs concatenate
    /// in chunk order, counts add, and `max` over the NaN-free sample is
    /// associative, so every chunking reproduces
    /// [`IntervalStats::compute`] bit-for-bit. The percentile sorts the
    /// merged sample in place (same comparator as
    /// [`descriptive::quantile`], after the order-sensitive mean and
    /// standard deviation are taken on the original order), skipping the
    /// reference path's clone of the sample.
    pub(crate) fn compute_kernel(intervals: &[i64], policy: KernelPolicy) -> Option<IntervalStats> {
        if intervals.is_empty() {
            return None;
        }
        let mut xs: Vec<f64> = Vec::with_capacity(intervals.len());
        let mut zeros = 0usize;
        let mut max = f64::NEG_INFINITY;
        for range in policy.chunks(intervals.len()) {
            let chunk = &intervals[range];
            xs.extend(chunk.iter().map(|&v| v as f64));
            zeros += chunk.iter().filter(|&&v| v == 0).count();
            let chunk_max = chunk
                .iter()
                .map(|&v| v as f64)
                .fold(f64::NEG_INFINITY, f64::max);
            max = max.max(chunk_max);
        }
        let count = xs.len();
        let mean = descriptive::mean(&xs)?;
        let std_dev = descriptive::std_dev_population(&xs)?;
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in interval sample"));
        Some(IntervalStats {
            count,
            mean,
            std_dev,
            p80: descriptive::quantile_sorted(&xs, 0.8),
            max,
            concurrent_fraction: zeros as f64 / count as f64,
        })
    }
}

/// Builds the interval ECDF of a sample (Figs. 3 and 5); `None` when
/// empty.
pub fn interval_cdf(intervals: &[i64]) -> Option<Ecdf> {
    let xs: Vec<f64> = intervals.iter().map(|&v| v as f64).collect();
    Ecdf::new(&xs)
}

/// Fig. 4's interval clusters: named duration bands, with simultaneous
/// attacks excluded (as the figure does).
pub const INTERVAL_BANDS: &[(&str, i64, i64)] = &[
    ("under 1 min", 1, 60),
    ("1-10 min (6-7 min mode)", 60, 600),
    ("10-60 min (20-40 min mode)", 600, 3_600),
    ("1-6 h (2-3 h mode)", 3_600, 21_600),
    ("6-24 h", 21_600, 86_400),
    ("over 1 day", 86_400, i64::MAX),
];

/// Counts non-simultaneous intervals per Fig. 4 band.
pub fn interval_bands(intervals: &[i64]) -> Vec<(&'static str, usize)> {
    INTERVAL_BANDS
        .iter()
        .map(|&(name, lo, hi)| {
            let n = intervals.iter().filter(|&&v| v >= lo && v < hi).count();
            (name, n)
        })
        .collect()
}

/// One simultaneous-attack event: all attacks sharing a start instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcurrentEvent {
    /// The shared start instant.
    pub start: Timestamp,
    /// Indices into `Dataset::attacks()`.
    pub attacks: Vec<usize>,
    /// Distinct families involved (sorted).
    pub families: Vec<Family>,
}

impl ConcurrentEvent {
    /// Whether a single family launched the whole event.
    pub fn is_single_family(&self) -> bool {
        self.families.len() == 1
    }
}

/// §III-B's concurrent-attack classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcurrencyAnalysis {
    /// Events launched by one family (the paper counts 3,692).
    pub single_family_events: Vec<ConcurrentEvent>,
    /// Events involving multiple families (the paper counts 956).
    pub multi_family_events: Vec<ConcurrentEvent>,
}

impl ConcurrencyAnalysis {
    /// Groups attacks by exact start instant; groups of ≥ 2 attacks are
    /// concurrent events.
    pub fn compute(ds: &Dataset) -> ConcurrencyAnalysis {
        let mut by_start: BTreeMap<Timestamp, Vec<usize>> = BTreeMap::new();
        for (i, a) in ds.attacks().iter().enumerate() {
            by_start.entry(a.start).or_default().push(i);
        }
        let mut single = Vec::new();
        let mut multi = Vec::new();
        for (start, attacks) in by_start {
            if attacks.len() < 2 {
                continue;
            }
            let mut families: Vec<Family> =
                attacks.iter().map(|&i| ds.attacks()[i].family).collect();
            families.sort_unstable();
            families.dedup();
            let event = ConcurrentEvent {
                start,
                attacks,
                families,
            };
            if event.is_single_family() {
                single.push(event);
            } else {
                multi.push(event);
            }
        }
        ConcurrencyAnalysis {
            single_family_events: single,
            multi_family_events: multi,
        }
    }

    /// Context-based variant of [`ConcurrencyAnalysis::compute`].
    ///
    /// The trace is sorted by start time, so attacks sharing a start
    /// instant form consecutive runs — a single linear scan replaces the
    /// `BTreeMap` regrouping and yields the exact same events in the
    /// exact same order.
    pub fn compute_ctx(ctx: &crate::context::AnalysisContext) -> ConcurrencyAnalysis {
        let attacks = ctx.dataset.attacks();
        let mut single = Vec::new();
        let mut multi = Vec::new();
        let mut i = 0;
        while i < attacks.len() {
            let start = attacks[i].start;
            let mut j = i + 1;
            while j < attacks.len() && attacks[j].start == start {
                j += 1;
            }
            if j - i >= 2 {
                let idxs: Vec<usize> = (i..j).collect();
                let mut families: Vec<Family> = idxs.iter().map(|&k| attacks[k].family).collect();
                families.sort_unstable();
                families.dedup();
                let event = ConcurrentEvent {
                    start,
                    attacks: idxs,
                    families,
                };
                if event.is_single_family() {
                    single.push(event);
                } else {
                    multi.push(event);
                }
            }
            i = j;
        }
        ConcurrencyAnalysis {
            single_family_events: single,
            multi_family_events: multi,
        }
    }

    /// Families that launch single-family simultaneous events (the paper:
    /// seven of the ten).
    pub fn families_with_simultaneous(&self) -> Vec<Family> {
        let mut fams: Vec<Family> = self
            .single_family_events
            .iter()
            .map(|e| e.families[0])
            .collect();
        fams.sort_unstable();
        fams.dedup();
        fams
    }

    /// Fraction of one family's attacks that are simultaneous with
    /// another attack of the same family (the paper: "10% of the attacks
    /// launched by Dirtjumper are simultaneous" — counting *events*
    /// relative to attacks).
    pub fn simultaneous_event_share(&self, ds: &Dataset, family: Family) -> f64 {
        let total = ds.attacks_of(family).count();
        if total == 0 {
            return 0.0;
        }
        let events = self
            .single_family_events
            .iter()
            .filter(|e| e.families[0] == family)
            .count();
        events as f64 / total as f64
    }

    /// Multi-family event counts per family pair, most common first (the
    /// paper: Dirtjumper+Blackenergy 391, Dirtjumper+Pandora 338).
    pub fn pair_counts(&self) -> Vec<((Family, Family), usize)> {
        let mut counts: BTreeMap<(Family, Family), usize> = BTreeMap::new();
        for e in &self.multi_family_events {
            for i in 0..e.families.len() {
                for j in i + 1..e.families.len() {
                    *counts.entry((e.families[i], e.families[j])).or_default() += 1;
                }
            }
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    #[test]
    fn family_intervals_are_consecutive_diffs() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 10, 1),
            attack(Family::Dirtjumper, 2, 100, 10, 2),
            attack(Family::Dirtjumper, 3, 400, 10, 1),
            attack(Family::Pandora, 4, 150, 10, 3),
        ]);
        assert_eq!(family_intervals(&ds, Family::Dirtjumper), vec![0, 300]);
        assert_eq!(family_intervals(&ds, Family::Pandora), Vec::<i64>::new());
        assert_eq!(all_intervals(&ds), vec![0, 50, 250]);
    }

    #[test]
    fn target_intervals_span_families() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 10, 7),
            attack(Family::Pandora, 2, 160, 10, 7),
            attack(Family::Dirtjumper, 3, 400, 10, 8),
        ]);
        let ip = ddos_schema::IpAddr4::from_octets(198, 51, 100, 7);
        assert_eq!(target_intervals(&ds, ip), vec![60]);
    }

    #[test]
    fn stats_capture_zero_fraction() {
        let s = IntervalStats::compute(&[0, 0, 100, 300]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.concurrent_fraction, 0.5);
        assert_eq!(s.max, 300.0);
        assert_eq!(s.mean, 100.0);
        assert!(IntervalStats::compute(&[]).is_none());
    }

    #[test]
    fn kernel_stats_match_reference_for_every_chunking() {
        let intervals = vec![0, 0, 30, 400, 2_000, 8_000, 90_000, 0, 7];
        let expect = IntervalStats::compute(&intervals).unwrap();
        for policy in [
            KernelPolicy::Auto,
            KernelPolicy::Chunked(1),
            KernelPolicy::Chunked(4),
            KernelPolicy::Chunked(100),
        ] {
            let got = IntervalStats::compute_kernel(&intervals, policy).unwrap();
            assert_eq!(got, expect, "{policy:?}");
        }
        assert!(IntervalStats::compute_kernel(&[], KernelPolicy::Auto).is_none());
    }

    #[test]
    fn cdf_and_bands() {
        let intervals = vec![0, 0, 30, 400, 2_000, 8_000, 90_000];
        let cdf = interval_cdf(&intervals).unwrap();
        assert!((cdf.eval(0.0) - 2.0 / 7.0).abs() < 1e-12);
        let bands = interval_bands(&intervals);
        assert_eq!(bands[0], ("under 1 min", 1));
        assert_eq!(bands[1].1, 1); // 400 s
        assert_eq!(bands[2].1, 1); // 2000 s
        assert_eq!(bands[3].1, 1); // 8000 s
        assert_eq!(bands[5].1, 1); // 90000 s
                                   // Simultaneous attacks excluded from every band.
        let total: usize = bands.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn concurrency_classification() {
        let ds = dataset(vec![
            // Single-family event: two Dirtjumper attacks at t=100.
            attack(Family::Dirtjumper, 1, 100, 10, 1),
            attack(Family::Dirtjumper, 2, 100, 10, 2),
            // Multi-family event at t=500.
            attack(Family::Dirtjumper, 3, 500, 10, 3),
            attack(Family::Pandora, 4, 500, 10, 3),
            attack(Family::Blackenergy, 5, 500, 10, 4),
            // Isolated attack.
            attack(Family::Yzf, 6, 900, 10, 5),
        ]);
        let c = ConcurrencyAnalysis::compute(&ds);
        assert_eq!(c.single_family_events.len(), 1);
        assert_eq!(c.multi_family_events.len(), 1);
        assert_eq!(c.multi_family_events[0].families.len(), 3);
        assert_eq!(c.families_with_simultaneous(), vec![Family::Dirtjumper]);
        let pairs = c.pair_counts();
        assert_eq!(pairs.len(), 3);
        assert!(pairs
            .iter()
            .any(|&((a, b), n)| a == Family::Dirtjumper && b == Family::Pandora && n == 1));
        let share = c.simultaneous_event_share(&ds, Family::Dirtjumper);
        assert!((share - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.simultaneous_event_share(&ds, Family::Nitol), 0.0);
    }
}
