//! Fig. 2 — the daily attack distribution.

use ddos_schema::{Dataset, Family, Timestamp};
use serde::{Deserialize, Serialize};

/// Daily attack counts over the observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailyDistribution {
    /// Count of attacks that *started* on each day of the window
    /// (indexed by day).
    pub counts: Vec<usize>,
    /// Midnight timestamp of day 0.
    pub first_day: Timestamp,
}

impl DailyDistribution {
    /// Buckets attack start times by window day.
    pub fn compute(ds: &Dataset) -> DailyDistribution {
        Self::compute_filtered(ds, None)
    }

    /// Same, restricted to one family.
    pub fn compute_for(ds: &Dataset, family: Family) -> DailyDistribution {
        Self::compute_filtered(ds, Some(family))
    }

    /// Context-based variant of [`DailyDistribution::compute`]: buckets
    /// the context's precomputed start vector as per-chunk count
    /// partials. Bucket increments are integer adds into disjoint
    /// per-day cells, so any chunking merges to exactly the sequential
    /// counts.
    pub fn compute_ctx(ctx: &crate::context::AnalysisContext) -> DailyDistribution {
        if ctx.kernels.is_reference() {
            return Self::compute(ctx.dataset);
        }
        let window = ctx.dataset.window();
        let mut counts = vec![0usize; window.num_days()];
        for range in ctx.kernels.chunks(ctx.all_starts.len()) {
            for &t in &ctx.all_starts[range] {
                if let Some(d) = window.day_index(t) {
                    counts[d] += 1;
                }
            }
        }
        DailyDistribution {
            counts,
            first_day: window.start,
        }
    }

    fn compute_filtered(ds: &Dataset, family: Option<Family>) -> DailyDistribution {
        let window = ds.window();
        let mut counts = vec![0usize; window.num_days()];
        for a in ds.attacks() {
            if family.is_some_and(|f| f != a.family) {
                continue;
            }
            if let Some(d) = window.day_index(a.start) {
                counts[d] += 1;
            }
        }
        DailyDistribution {
            counts,
            first_day: window.start,
        }
    }

    /// Mean attacks per day over the whole window (the paper: "on
    /// average there are 243 DDoS attacks ... every day").
    pub fn mean_per_day(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts.iter().sum::<usize>() as f64 / self.counts.len() as f64
    }

    /// The busiest day: `(day_index, count)` (the paper: 983 attacks on
    /// 2012-08-30).
    pub fn peak(&self) -> Option<(usize, usize)> {
        self.counts
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .filter(|&(_, c)| c > 0)
    }

    /// The calendar date of a day index.
    pub fn date_of(&self, day: usize) -> Timestamp {
        self.first_day + ddos_schema::Seconds::days(day as i64)
    }

    /// Plot series: `(date, count)` per day.
    pub fn series(&self) -> Vec<(Timestamp, usize)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(d, &c)| (self.date_of(d), c))
            .collect()
    }

    /// Lag-`k` autocorrelation of the daily counts — the paper checked
    /// for (and found no) daily/weekly periodicity; a weekly pattern
    /// would show as a spike at lag 7.
    pub fn autocorrelation(&self, lag: usize) -> Option<f64> {
        let xs: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        ddos_stats::timeseries::acf::acf(&xs, lag).map(|a| a[lag])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    #[test]
    fn buckets_by_day() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 60, 1),
            attack(Family::Dirtjumper, 2, 1_000, 60, 1),
            attack(Family::Pandora, 3, 86_400 + 5, 60, 2),
        ]);
        let d = DailyDistribution::compute(&ds);
        assert_eq!(d.counts[0], 2);
        assert_eq!(d.counts[1], 1);
        assert_eq!(d.counts[2], 0);
        assert_eq!(d.peak(), Some((0, 2)));
        assert!((d.mean_per_day() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn ctx_kernel_matches_dataset_scan_for_every_chunking() {
        use crate::kernels::KernelPolicy;
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 60, 1),
            attack(Family::Dirtjumper, 2, 1_000, 60, 1),
            attack(Family::Pandora, 3, 86_400 + 5, 60, 2),
            attack(Family::Yzf, 4, 3 * 86_400, 60, 3),
        ]);
        let expect = DailyDistribution::compute(&ds);
        for policy in [
            KernelPolicy::Reference,
            KernelPolicy::Auto,
            KernelPolicy::Chunked(1),
            KernelPolicy::Chunked(3),
            KernelPolicy::Chunked(100),
        ] {
            let ctx = crate::context::AnalysisContext::new(&ds).with_kernels(policy);
            assert_eq!(DailyDistribution::compute_ctx(&ctx), expect, "{policy:?}");
        }
    }

    #[test]
    fn family_filter() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 60, 1),
            attack(Family::Pandora, 2, 200, 60, 2),
        ]);
        let d = DailyDistribution::compute_for(&ds, Family::Pandora);
        assert_eq!(d.counts[0], 1);
        assert_eq!(d.counts.iter().sum::<usize>(), 1);
    }

    #[test]
    fn series_dates_advance_daily() {
        let ds = dataset(vec![attack(Family::Yzf, 1, 0, 10, 1)]);
        let d = DailyDistribution::compute(&ds);
        let s = d.series();
        assert_eq!(s.len(), 10);
        assert_eq!((s[1].0 - s[0].0).get(), 86_400);
    }

    #[test]
    fn empty_dataset_has_no_peak() {
        let ds = dataset(vec![]);
        let d = DailyDistribution::compute(&ds);
        assert_eq!(d.peak(), None);
        assert_eq!(d.mean_per_day(), 0.0);
    }

    #[test]
    fn autocorrelation_of_flat_series_is_none() {
        let ds = dataset(vec![]);
        let d = DailyDistribution::compute(&ds);
        // All-zero counts are constant: ACF undefined.
        assert!(d.autocorrelation(7).is_none());
    }
}
