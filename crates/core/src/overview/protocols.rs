//! Fig. 1 / Table II — attack transport popularity.

use ddos_schema::{Dataset, Family, Protocol};
use serde::{Deserialize, Serialize};

/// Attack counts per protocol across the whole trace (Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolPopularity {
    /// `(protocol, attacks)` for every protocol with at least one attack,
    /// sorted by count descending.
    pub counts: Vec<(Protocol, usize)>,
}

impl ProtocolPopularity {
    /// Counts attacks per protocol.
    pub fn compute(ds: &Dataset) -> ProtocolPopularity {
        let mut counts = [0usize; Protocol::ALL.len()];
        for a in ds.attacks() {
            counts[a.category.index()] += 1;
        }
        let mut counts: Vec<(Protocol, usize)> = Protocol::ALL
            .into_iter()
            .zip(counts)
            .filter(|&(_, n)| n > 0)
            .collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ProtocolPopularity { counts }
    }

    /// The dominant protocol, if any attacks exist.
    pub fn dominant(&self) -> Option<Protocol> {
        self.counts.first().map(|&(p, _)| p)
    }

    /// Fraction of attacks carried over connection-oriented transports
    /// (the paper's anti-spoofing argument, §III-B).
    pub fn connection_oriented_fraction(&self) -> f64 {
        let total: usize = self.counts.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return 0.0;
        }
        let co: usize = self
            .counts
            .iter()
            .filter(|&&(p, _)| p.is_connection_oriented())
            .map(|&(_, n)| n)
            .sum();
        co as f64 / total as f64
    }
}

/// One row of Table II: protocol, family, attack count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolFamilyRow {
    /// Transport category.
    pub protocol: Protocol,
    /// Botnet family.
    pub family: Family,
    /// Number of attacks of that family over that transport.
    pub attacks: usize,
}

/// Table II — protocol preferences of each botnet family.
///
/// Rows are grouped by protocol in the paper's order, families
/// alphabetical within a protocol, zero rows omitted.
pub fn protocol_preferences(ds: &Dataset) -> Vec<ProtocolFamilyRow> {
    let mut counts = [[0usize; Family::ALL.len()]; Protocol::ALL.len()];
    for a in ds.attacks() {
        counts[a.category.index()][a.family.index()] += 1;
    }
    let mut rows = Vec::new();
    for p in Protocol::ALL {
        for f in Family::ALL {
            let n = counts[p.index()][f.index()];
            if n > 0 {
                rows.push(ProtocolFamilyRow {
                    protocol: p,
                    family: f,
                    attacks: n,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    #[test]
    fn popularity_sorted_and_dominant() {
        let mut attacks = vec![
            attack(Family::Dirtjumper, 1, 100, 60, 1),
            attack(Family::Dirtjumper, 2, 200, 60, 1),
            attack(Family::Yzf, 3, 300, 60, 2),
        ];
        attacks[2].category = Protocol::Udp;
        let ds = dataset(attacks);
        let pop = ProtocolPopularity::compute(&ds);
        assert_eq!(pop.dominant(), Some(Protocol::Http));
        assert_eq!(pop.counts[0], (Protocol::Http, 2));
        assert_eq!(pop.counts[1], (Protocol::Udp, 1));
        assert!((pop.connection_oriented_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset() {
        let ds = dataset(vec![]);
        let pop = ProtocolPopularity::compute(&ds);
        assert!(pop.counts.is_empty());
        assert_eq!(pop.dominant(), None);
        assert_eq!(pop.connection_oriented_fraction(), 0.0);
    }

    #[test]
    fn table_ii_rows_group_by_protocol_then_family() {
        let mut attacks = vec![
            attack(Family::Blackenergy, 1, 100, 60, 1),
            attack(Family::Dirtjumper, 2, 200, 60, 1),
            attack(Family::Blackenergy, 3, 300, 60, 2),
        ];
        attacks[2].category = Protocol::Syn;
        let ds = dataset(attacks);
        let rows = protocol_preferences(&ds);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].protocol, Protocol::Http);
        assert_eq!(rows[0].family, Family::Blackenergy);
        assert_eq!(rows[0].attacks, 1);
        assert_eq!(rows[1].family, Family::Dirtjumper);
        assert_eq!(rows[2].protocol, Protocol::Syn);
    }

    #[test]
    fn ties_order_by_protocol_enum() {
        let mut attacks = vec![
            attack(Family::Nitol, 1, 100, 60, 1),
            attack(Family::Nitol, 2, 200, 60, 1),
        ];
        attacks[1].category = Protocol::Tcp;
        let ds = dataset(attacks);
        let pop = ProtocolPopularity::compute(&ds);
        assert_eq!(pop.counts, vec![(Protocol::Http, 1), (Protocol::Tcp, 1)]);
    }
}
