//! The columnar bot substrate: the trace's two big joins as sorted
//! columns instead of hash maps.
//!
//! The paper's source analyses (§IV) resolve every one of the trace's
//! bot IPs once per attack-participation — and bots recur across
//! hundreds of attacks. This module amortizes that work to once per
//! *trace*:
//!
//! * [`BotTable`] — the `Botlist` as parallel columns: a sorted IP
//!   column plus country codes and precomputed trigonometry
//!   ([`PointTrig`]: `sin(lat)`, `cos(lat)`, `sin(lon)`, …) per bot, so
//!   the dispersion kernels never call `sin`/`cos` on a bot twice.
//! * [`SourceTable`] — the attack→source join in CSR form: every
//!   distinct source IP is interned into a dictionary once and each
//!   attack's source list becomes a dense `u32` id slice. The id space
//!   *is* the join — ids below the bot count are `BotTable` rows
//!   verbatim — so a single compare replaces the per-lookup hash probe.
//!   Downstream passes (dispersion, shift, weekly bot maps, the
//!   defense blacklist replay) work on row ids and cached triples.
//!
//! Both tables are derived purely from the dataset, and the CSR fill is
//! data-parallel over disjoint output slices, so a parallel build is
//! trivially deterministic — the context build exploits this.

use std::ops::Range;

use ddos_geo::PointTrig;
use ddos_schema::{AttackRecord, BotRecord, CountryCode, Dataset, IpAddr4, LatLon};

/// Sentinel "row" for source IPs absent from the `Botlist`.
pub const NO_BOT: u32 = u32::MAX;

/// Splits `len` items into at most `pieces` contiguous ranges of
/// near-equal size (used to hand disjoint work to scoped threads).
pub(crate) fn chunk_ranges(len: usize, pieces: usize) -> Vec<Range<usize>> {
    if len == 0 || pieces == 0 {
        return Vec::new();
    }
    let pieces = pieces.min(len);
    let base = len / pieces;
    let extra = len % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Worker threads to use for data-parallel build phases.
pub(crate) fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A 16-bit-prefix bucket index over a sorted IP column.
///
/// `starts[p]..starts[p + 1]` is the run of addresses whose high half
/// is `p`, so a lookup binary-searches only that run instead of the
/// whole column. Same result as a full binary search (the column is
/// sorted and the prefix is its leading bits). This is the *point
/// lookup* path; bulk joins of sorted source lists go through
/// [`resolve_sorted_run`] instead, which never touches the index.
#[derive(Debug, Clone, Default)]
struct IpBuckets {
    starts: Vec<u32>,
}

impl IpBuckets {
    const BUCKETS: usize = 1 << 16;

    fn build(sorted: &[IpAddr4]) -> IpBuckets {
        let mut starts = vec![0u32; Self::BUCKETS + 1];
        for ip in sorted {
            starts[(ip.value() >> 16) as usize + 1] += 1;
        }
        for p in 0..Self::BUCKETS {
            starts[p + 1] += starts[p];
        }
        IpBuckets { starts }
    }

    #[inline]
    fn resolve(&self, sorted: &[IpAddr4], ip: IpAddr4) -> Option<u32> {
        if self.starts.is_empty() {
            // Default-constructed (no index): plain binary search.
            return sorted.binary_search(&ip).ok().map(|i| i as u32);
        }
        let p = (ip.value() >> 16) as usize;
        let lo = self.starts[p] as usize;
        let hi = self.starts[p + 1] as usize;
        sorted[lo..hi]
            .binary_search(&ip)
            .ok()
            .map(|i| (lo + i) as u32)
    }
}

/// Reusable workspace for [`radix_sort_by_ip_with`]: the scatter
/// buffer plus both digit-histogram arrays (~512 KiB once sized). The
/// epoch fold sorts a roster per epoch build, so reusing one workspace
/// across appends removes the dominant allocation of the hot path.
#[derive(Debug, Default)]
pub(crate) struct RadixScratch {
    scratch: Vec<u64>,
    lo_counts: Vec<u32>,
    hi_counts: Vec<u32>,
}

/// Stable LSD radix sort of `(ip << 32) | position` keys by the IP
/// half: two 16-bit digit passes, each a counting sort. Equal IPs keep
/// their relative (position) order, and two linear passes beat a
/// comparison sort's `n log n` at roster scale.
pub(crate) fn radix_sort_by_ip(order: &mut Vec<u64>) {
    radix_sort_by_ip_with(order, &mut RadixScratch::default());
}

/// [`radix_sort_by_ip`] against a caller-owned workspace. The workspace
/// contents are ignored on entry (resized and refilled here), so one
/// scratch serves any sequence of sorts.
pub(crate) fn radix_sort_by_ip_with(order: &mut Vec<u64>, ws: &mut RadixScratch) {
    let n = order.len();
    // The scatter buffer must be exactly `n` long: `mem::swap` makes it
    // the output, and a stale longer buffer would change `order.len()`.
    ws.scratch.clear();
    ws.scratch.resize(n, 0);
    ws.lo_counts.clear();
    ws.lo_counts.resize((1 << 16) + 1, 0);
    ws.hi_counts.clear();
    ws.hi_counts.resize((1 << 16) + 1, 0);
    let (scratch, lo_counts, hi_counts) = (&mut ws.scratch, &mut ws.lo_counts, &mut ws.hi_counts);
    // Both digit histograms in one read pass, then two stable scatters.
    for &key in order.iter() {
        lo_counts[((key >> 32) as u16 as usize) + 1] += 1;
        hi_counts[((key >> 48) as u16 as usize) + 1] += 1;
    }
    for d in 0..1 << 16 {
        lo_counts[d + 1] += lo_counts[d];
        hi_counts[d + 1] += hi_counts[d];
    }
    for (shift, counts) in [(32u32, &mut *lo_counts), (48, hi_counts)] {
        for &key in order.iter() {
            let slot = &mut counts[(key >> shift) as u16 as usize];
            scratch[*slot as usize] = key;
            *slot += 1;
        }
        std::mem::swap(order, scratch);
    }
}

/// The `Botlist` as a columnar table: one sorted IP column plus
/// parallel arrays of countries, coordinates, and precomputed
/// trigonometry. Row ids are `u32` indices into the columns.
///
/// Duplicate bot records for one IP collapse to the **last** record, the
/// same overwrite semantics as [`crate::util::BotIndex::build`] — the property tests
/// below hold the two joins bit-equal on arbitrary rosters.
#[derive(Debug, Clone, Default)]
pub struct BotTable {
    ips: Vec<IpAddr4>,
    countries: Vec<CountryCode>,
    coords: Vec<LatLon>,
    trig: Vec<PointTrig>,
    /// Global position (`Dataset::bots` row) of each surviving record —
    /// the arbiter for last-wins when epoch shards merge: the winner of
    /// a duplicate IP across two shards is the record with the greater
    /// original position, exactly the record the monolithic build keeps.
    positions: Vec<u32>,
    buckets: IpBuckets,
}

impl BotTable {
    /// Builds the table from a dataset's bot records: sort by IP,
    /// collapse duplicates last-wins, precompute each survivor's
    /// trigonometry exactly once.
    pub fn build(ds: &Dataset) -> BotTable {
        Self::from_records(ds.bots().iter().enumerate().map(|(i, b)| (i as u32, b)))
    }

    /// Builds the table from `(global position, record)` pairs with
    /// ascending positions — the epoch-shard build path. Equivalent to
    /// [`BotTable::build`] when handed the whole roster.
    pub(crate) fn from_records<'r>(
        records: impl IntoIterator<Item = (u32, &'r BotRecord)>,
    ) -> BotTable {
        Self::from_records_with(records, &mut RadixScratch::default())
    }

    /// [`BotTable::from_records`] against a caller-owned radix
    /// workspace, so repeated epoch builds stop re-allocating it.
    pub(crate) fn from_records_with<'r>(
        records: impl IntoIterator<Item = (u32, &'r BotRecord)>,
        ws: &mut RadixScratch,
    ) -> BotTable {
        let records: Vec<(u32, &BotRecord)> = records.into_iter().collect();
        debug_assert!(records.windows(2).all(|w| w[0].0 < w[1].0));
        // (ip, local sequence) packed into one u64 so the sort never
        // touches the records themselves. A stable LSD radix sort over
        // the IP half (two 16-bit digits) keeps the *last* record of an
        // IP's run last — the positions arrive ascending and stability
        // preserves that — matching the hash map overwrite semantics.
        let mut order: Vec<u64> = records
            .iter()
            .enumerate()
            .map(|(seq, (_, b))| (u64::from(b.ip.value()) << 32) | seq as u64)
            .collect();
        radix_sort_by_ip_with(&mut order, ws);

        let mut ips = Vec::with_capacity(order.len());
        let mut countries = Vec::with_capacity(order.len());
        let mut coords = Vec::with_capacity(order.len());
        let mut trig = Vec::with_capacity(order.len());
        let mut positions = Vec::with_capacity(order.len());
        let mut run = 0;
        while run < order.len() {
            let ip = IpAddr4((order[run] >> 32) as u32);
            let mut last = run;
            while last + 1 < order.len() && (order[last + 1] >> 32) as u32 == ip.value() {
                last += 1;
            }
            let (pos, bot) = records[order[last] as u32 as usize];
            ips.push(ip);
            countries.push(bot.location.country);
            coords.push(bot.location.coords);
            trig.push(PointTrig::new(bot.location.coords));
            positions.push(pos);
            run = last + 1;
        }
        let buckets = IpBuckets::build(&ips);
        BotTable {
            ips,
            countries,
            coords,
            trig,
            positions,
            buckets,
        }
    }

    /// Number of distinct bots.
    pub fn len(&self) -> usize {
        self.ips.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ips.is_empty()
    }

    /// The sorted IP column.
    pub fn ips(&self) -> &[IpAddr4] {
        &self.ips
    }

    /// Resolves one address to its row id (bucketed binary search on
    /// the sorted IP column).
    #[inline]
    pub fn resolve(&self, ip: IpAddr4) -> Option<u32> {
        self.buckets.resolve(&self.ips, ip)
    }

    /// Batch resolution: appends the row of every *resolvable* address
    /// in `ips`, preserving input order (the row-id counterpart of
    /// [`crate::util::BotIndex::coords_of`]).
    pub fn resolve_rows(&self, ips: &[IpAddr4], out: &mut Vec<u32>) {
        for &ip in ips {
            if let Some(row) = self.resolve(ip) {
                out.push(row);
            }
        }
    }

    /// The IP of one row.
    #[inline]
    pub fn ip(&self, row: u32) -> IpAddr4 {
        self.ips[row as usize]
    }

    /// The country of one row.
    #[inline]
    pub fn country(&self, row: u32) -> CountryCode {
        self.countries[row as usize]
    }

    /// The coordinates of one row.
    #[inline]
    pub fn coords(&self, row: u32) -> LatLon {
        self.coords[row as usize]
    }

    /// The precomputed trigonometry of one row.
    #[inline]
    pub fn trig(&self, row: u32) -> &PointTrig {
        &self.trig[row as usize]
    }

    /// The whole trigonometry column, for indexed kernels that read it
    /// in place through a row list instead of gathering copies.
    #[inline]
    pub fn trigs(&self) -> &[PointTrig] {
        &self.trig
    }
}

/// How one side's rows map into a merged [`BotTable`]: `rows[old]` is
/// the merged row, `changed[old]` flags rows whose country or
/// coordinates differ in the merged table (the side's record lost a
/// duplicate-IP arbitration), so derived per-attack aggregates must be
/// recomputed.
#[derive(Debug, Clone)]
pub(crate) struct BotRemap {
    pub(crate) rows: Vec<u32>,
    pub(crate) changed: Vec<bool>,
}

/// Merges two bot tables by a single two-pointer pass over their sorted
/// IP columns. A duplicate IP keeps the record with the greater global
/// position — the record the monolithic last-wins build keeps — and the
/// winner's cached trig bits are copied verbatim ([`PointTrig::new`] is
/// deterministic, so either side's cache holds identical bits for
/// identical coordinates).
pub(crate) fn merge_bot_tables(a: &BotTable, b: &BotTable) -> (BotTable, BotRemap, BotRemap) {
    let cap = a.len() + b.len();
    let mut ips = Vec::with_capacity(cap);
    let mut countries = Vec::with_capacity(cap);
    let mut coords = Vec::with_capacity(cap);
    let mut trig = Vec::with_capacity(cap);
    let mut positions = Vec::with_capacity(cap);
    let mut ra = BotRemap {
        rows: vec![0; a.len()],
        changed: vec![false; a.len()],
    };
    let mut rb = BotRemap {
        rows: vec![0; b.len()],
        changed: vec![false; b.len()],
    };
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let next = ips.len() as u32;
        let from_a = j >= b.len() || (i < a.len() && a.ips[i] <= b.ips[j]);
        let dup = i < a.len() && j < b.len() && a.ips[i] == b.ips[j];
        if dup {
            // Same record observed from both shards has equal positions
            // and identical attributes; a genuine duplicate pair is
            // arbitrated by position, and the loser's side only needs a
            // recompute when the attributes actually differ.
            let differ = a.countries[i] != b.countries[j]
                || a.coords[i].lat.to_bits() != b.coords[j].lat.to_bits()
                || a.coords[i].lon.to_bits() != b.coords[j].lon.to_bits();
            let (src, k) = if a.positions[i] >= b.positions[j] {
                rb.changed[j] = differ;
                (a, i)
            } else {
                ra.changed[i] = differ;
                (b, j)
            };
            ips.push(src.ips[k]);
            countries.push(src.countries[k]);
            coords.push(src.coords[k]);
            trig.push(src.trig[k]);
            positions.push(src.positions[k]);
            ra.rows[i] = next;
            rb.rows[j] = next;
            i += 1;
            j += 1;
        } else {
            let (src, k) = if from_a {
                ra.rows[i] = next;
                i += 1;
                (a, i - 1)
            } else {
                rb.rows[j] = next;
                j += 1;
                (b, j - 1)
            };
            ips.push(src.ips[k]);
            countries.push(src.countries[k]);
            coords.push(src.coords[k]);
            trig.push(src.trig[k]);
            positions.push(src.positions[k]);
        }
    }
    let buckets = IpBuckets::build(&ips);
    (
        BotTable {
            ips,
            countries,
            coords,
            trig,
            positions,
            buckets,
        },
        ra,
        rb,
    )
}

/// The trace-wide attack→source join in CSR form.
///
/// Every distinct source IP (resolvable through the `Botlist` or not)
/// is interned into a dictionary; attack `i`'s source list is the id
/// slice [`SourceTable::ids_of`]`(i)`, in original source order. The id
/// space *is* the join: ids below `bots_len` are [`BotTable`] rows
/// verbatim, ids at or above it index the sorted run of unresolvable
/// sources — so [`SourceTable::bot_row`] is a single compare, and after
/// the build no pass ever hashes or searches an IP again.
#[derive(Debug, Clone, Default)]
pub struct SourceTable {
    /// Bot IPs in row order, then the sorted distinct unresolvable
    /// source IPs; indexed directly by dictionary id.
    dict: Vec<IpAddr4>,
    /// Ids below this are bot rows; ids at or above index the extras.
    bots_len: u32,
    offsets: Vec<u32>,
    ids: Vec<u32>,
    /// Unresolvable sources per attack. Zero (the overwhelmingly common
    /// case) means attack `i`'s id slice is a valid row list verbatim.
    unresolved: Vec<u32>,
}

impl SourceTable {
    /// Builds the join. With `parallel` set, the unresolved-IP sweep and
    /// the CSR id fill run chunked on scoped threads over disjoint
    /// output slices; the result is identical either way.
    pub fn build(ds: &Dataset, bots: &BotTable, parallel: bool) -> SourceTable {
        Self::build_slice(ds.attacks(), bots, parallel)
    }

    /// [`SourceTable::build`] over an attack slice — the epoch-shard
    /// build path, joining one epoch's attacks against that epoch's
    /// bot table.
    pub(crate) fn build_slice(
        attacks: &[AttackRecord],
        bots: &BotTable,
        parallel: bool,
    ) -> SourceTable {
        let mut offsets = Vec::with_capacity(attacks.len() + 1);
        let mut total: u64 = 0;
        offsets.push(0u32);
        for a in attacks {
            total += a.sources.len() as u64;
            assert!(
                total < u64::from(NO_BOT),
                "trace exceeds u32 participations"
            );
            offsets.push(total as u32);
        }

        // Pass 1 — resolve every source against the BotTable once: hits
        // write their bot row (== dictionary id) straight into the id
        // column, misses record their position and IP. Chunked over
        // disjoint slices of the id column on scoped threads when
        // `parallel`; chunk results concatenate in chunk order, so the
        // miss list is identical either way.
        let mut ids = vec![0u32; total as usize];
        // Direct-mapped resolve cache, `(ip << 32) | row` per slot. A
        // bot participates in ~5 attacks on average and rosters recur
        // week over week, so most lookups re-resolve a recent address:
        // a cache hit is one multiply and one load instead of a bucket
        // search. Only successful resolutions are cached (a hit entry's
        // low word is a row `< NO_BOT`, so no live entry equals the
        // `u64::MAX` empty sentinel) and stale slots merely fall through
        // to the search — the output is identical with or without it.
        const CACHE_BITS: u32 = 18;
        let sweep = |range: Range<usize>, out: &mut [u32]| -> Vec<(u32, IpAddr4)> {
            let base = offsets[range.start] as usize;
            let mut misses = Vec::new();
            let mut cache = vec![u64::MAX; 1 << CACHE_BITS];
            for i in range {
                let lo = offsets[i] as usize - base;
                for (k, &ip) in attacks[i].sources.iter().enumerate() {
                    let h = (ip.value().wrapping_mul(0x9E37_79B9) >> (32 - CACHE_BITS)) as usize;
                    let entry = cache[h];
                    if (entry >> 32) as u32 == ip.value() && entry != u64::MAX {
                        out[lo + k] = entry as u32;
                        continue;
                    }
                    match bots.resolve(ip) {
                        Some(row) => {
                            cache[h] = (u64::from(ip.value()) << 32) | u64::from(row);
                            out[lo + k] = row;
                        }
                        None => {
                            out[lo + k] = NO_BOT;
                            misses.push(((base + lo + k) as u32, ip));
                        }
                    }
                }
            }
            misses
        };
        let ranges = chunk_ranges(attacks.len(), if parallel { worker_count() } else { 1 });
        let misses: Vec<(u32, IpAddr4)> = if parallel && ranges.len() > 1 {
            let mut slices: Vec<(Range<usize>, &mut [u32])> = Vec::with_capacity(ranges.len());
            let mut rest: &mut [u32] = &mut ids;
            for r in ranges {
                let size = (offsets[r.end] - offsets[r.start]) as usize;
                let (head, tail) = rest.split_at_mut(size);
                slices.push((r, head));
                rest = tail;
            }
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = slices
                    .into_iter()
                    .map(|(r, out)| scope.spawn(|_| sweep(r, out)))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("source sweep panicked"))
                    .collect()
            })
            .expect("source sweep scope panicked")
        } else {
            let mut collected = Vec::new();
            for r in ranges {
                let size = (offsets[r.end] - offsets[r.start]) as usize;
                let start = offsets[r.start] as usize;
                collected.extend(sweep(r, &mut ids[start..start + size]));
            }
            collected
        };

        // Pass 2 — intern the misses: the distinct unresolvable IPs,
        // sorted (erasing any trace of the chunking), take the id range
        // after the bot rows. Only miss positions are revisited.
        let mut extras: Vec<IpAddr4> = misses.iter().map(|&(_, ip)| ip).collect();
        extras.sort_unstable();
        extras.dedup();
        let bots_len = bots.len() as u32;
        assert!(
            bots.len() + extras.len() < NO_BOT as usize,
            "trace exceeds u32 dictionary ids"
        );
        let extra_buckets = IpBuckets::build(&extras);
        let mut unresolved = vec![0u32; attacks.len()];
        for &(pos, ip) in &misses {
            let e = extra_buckets
                .resolve(&extras, ip)
                .expect("every unresolved source IP is interned");
            ids[pos as usize] = bots_len + e;
            // `offsets[i] <= pos < offsets[i + 1]` locates the attack.
            unresolved[offsets.partition_point(|&o| o <= pos) - 1] += 1;
        }

        let mut dict = Vec::with_capacity(bots.len() + extras.len());
        dict.extend_from_slice(bots.ips());
        dict.extend_from_slice(&extras);
        SourceTable {
            dict,
            bots_len,
            offsets,
            ids,
            unresolved,
        }
    }

    /// Number of distinct source IPs in the trace.
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// Total attack-participations (sum of all source list lengths).
    pub fn participations(&self) -> usize {
        self.ids.len()
    }

    /// Attack `i`'s source list as dictionary ids, in source order.
    #[inline]
    pub fn ids_of(&self, attack: usize) -> &[u32] {
        &self.ids[self.offsets[attack] as usize..self.offsets[attack + 1] as usize]
    }

    /// The [`BotTable`] row of a dictionary id, or [`NO_BOT`]. A single
    /// compare: ids below the bot count *are* rows.
    #[inline]
    pub fn bot_row(&self, id: u32) -> u32 {
        if id < self.bots_len {
            id
        } else {
            NO_BOT
        }
    }

    /// The IP behind a dictionary id.
    #[inline]
    pub fn ip_of(&self, id: u32) -> IpAddr4 {
        self.dict[id as usize]
    }

    /// How many of attack `i`'s sources did not resolve to a bot row.
    /// When zero, [`SourceTable::ids_of`]`(i)` is a row list verbatim —
    /// consumers skip the per-id resolve scan entirely.
    #[inline]
    pub fn unresolved_in(&self, attack: usize) -> u32 {
        self.unresolved[attack]
    }

    /// Total participations across the trace that did not resolve to a
    /// bot row (telemetry: the `context/unresolved_sources` gauge).
    pub fn unresolved_total(&self) -> u64 {
        self.unresolved.iter().map(|&n| u64::from(n)).sum()
    }
}

/// Merges two source tables built against the two sides of a
/// [`merge_bot_tables`] call, producing the table [`SourceTable::build_slice`]
/// would build for the concatenated attack slice against `merged_bots`.
///
/// The merged extras dictionary is the sorted distinct union of both
/// sides' extras minus those now resolvable in `merged_bots` (an IP
/// unresolvable on one side may resolve against a bot the other side
/// contributed — a *promotion*). Returns the merged table plus the
/// ascending merged-local indices of *affected* attacks: attacks
/// containing a bot row whose attributes changed in the merge or an
/// extra that got promoted. Their derived per-attack aggregates
/// (dispersion snapshot, weekly country pairs) must be recomputed
/// against the merged table.
pub(crate) fn merge_source_tables(
    a: &SourceTable,
    b: &SourceTable,
    merged_bots: &BotTable,
    ra: &BotRemap,
    rb: &BotRemap,
) -> (SourceTable, Vec<u32>) {
    let merged_len = merged_bots.len() as u32;
    let ea = &a.dict[a.bots_len as usize..];
    let eb = &b.dict[b.bots_len as usize..];
    // Sorted-union sweep over the two extras runs: each candidate either
    // resolves in the merged bots (promotion — its new id is the bot
    // row) or joins the kept extras after the merged bot id range.
    let mut kept: Vec<IpAddr4> = Vec::with_capacity(ea.len() + eb.len());
    let mut map_a = vec![0u32; ea.len()];
    let mut map_b = vec![0u32; eb.len()];
    let (mut i, mut j) = (0usize, 0usize);
    while i < ea.len() || j < eb.len() {
        let take_a = j >= eb.len() || (i < ea.len() && ea[i] <= eb[j]);
        let ip = if take_a { ea[i] } else { eb[j] };
        let new_id = match merged_bots.resolve(ip) {
            Some(row) => row,
            None => {
                kept.push(ip);
                merged_len + (kept.len() - 1) as u32
            }
        };
        if i < ea.len() && ea[i] == ip {
            map_a[i] = new_id;
            i += 1;
        }
        if j < eb.len() && eb[j] == ip {
            map_b[j] = new_id;
            j += 1;
        }
    }
    assert!(
        merged_bots.len() + kept.len() < NO_BOT as usize,
        "trace exceeds u32 dictionary ids"
    );

    // Rewrite both id columns through the remaps, recount unresolved,
    // and flag affected attacks in one pass per side.
    let na = a.unresolved.len();
    let mut ids = Vec::with_capacity(a.ids.len() + b.ids.len());
    let mut unresolved = Vec::with_capacity(na + b.unresolved.len());
    let mut affected = Vec::new();
    let mut rewrite = |side: &SourceTable, remap: &BotRemap, map: &[u32], base: usize| {
        for k in 0..side.unresolved.len() {
            let slice = &side.ids[side.offsets[k] as usize..side.offsets[k + 1] as usize];
            let mut hit = false;
            let mut un = 0u32;
            for &old in slice {
                let new = if old < side.bots_len {
                    hit |= remap.changed[old as usize];
                    remap.rows[old as usize]
                } else {
                    let new = map[(old - side.bots_len) as usize];
                    // A promoted extra now resolves to a bot row.
                    hit |= new < merged_len;
                    new
                };
                un += u32::from(new >= merged_len);
                ids.push(new);
            }
            unresolved.push(un);
            if hit {
                affected.push((base + k) as u32);
            }
        }
    };
    rewrite(a, ra, &map_a, 0);
    rewrite(b, rb, &map_b, na);

    let shift = a.ids.len() as u32;
    let mut offsets = a.offsets.clone();
    offsets.extend(b.offsets[1..].iter().map(|&o| o + shift));

    let mut dict = Vec::with_capacity(merged_bots.len() + kept.len());
    dict.extend_from_slice(merged_bots.ips());
    dict.extend_from_slice(&kept);
    (
        SourceTable {
            dict,
            bots_len: merged_len,
            offsets,
            ids,
            unresolved,
        },
        affected,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::BotIndex;
    use ddos_schema::record::{BotRecord, Location};
    use ddos_schema::{
        Asn, AttackRecord, BotnetId, CityId, DatasetBuilder, DdosId, Family, OrgId, Protocol,
        Timestamp, Window,
    };
    use proptest::prelude::*;

    fn ip(last: u8) -> IpAddr4 {
        IpAddr4::from_octets(203, 0, 113, last)
    }

    fn bot(last: u8, cc: &str, lat: f64, lon: f64) -> BotRecord {
        BotRecord {
            ip: ip(last),
            botnet: BotnetId(1),
            family: Family::Pandora,
            location: Location {
                country: cc.parse().unwrap(),
                city: CityId(1),
                org: OrgId(1),
                asn: Asn(64_001),
                coords: LatLon::new_unchecked(lat, lon),
            },
            first_seen: Timestamp(0),
            last_seen: Timestamp(1_000),
        }
    }

    fn attack(id: u64, sources: Vec<u8>) -> AttackRecord {
        AttackRecord {
            id: DdosId(id),
            botnet: BotnetId(1),
            family: Family::Pandora,
            category: Protocol::Http,
            target_ip: IpAddr4::from_octets(198, 51, 100, 1),
            target: Location {
                country: "US".parse().unwrap(),
                city: CityId(9),
                org: OrgId(9),
                asn: Asn(64_009),
                coords: LatLon::new_unchecked(38.0, -77.0),
            },
            start: Timestamp(id as i64 * 100),
            end: Timestamp(id as i64 * 100 + 60),
            sources: sources.into_iter().map(ip).collect(),
        }
    }

    fn dataset(bots: Vec<BotRecord>, attacks: Vec<AttackRecord>) -> Dataset {
        let window = Window::new(Timestamp(0), Timestamp(1_000_000)).unwrap();
        let mut b = DatasetBuilder::new(window);
        for bot in bots {
            b.push_bot(bot).unwrap();
        }
        for a in attacks {
            b.push_attack(a).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn bot_table_sorted_and_resolvable() {
        let ds = dataset(
            vec![bot(9, "RU", 55.0, 37.0), bot(1, "US", 40.0, -74.0)],
            vec![],
        );
        let t = BotTable::build(&ds);
        assert_eq!(t.len(), 2);
        assert!(t.ips().windows(2).all(|w| w[0] < w[1]));
        let row = t.resolve(ip(9)).unwrap();
        assert_eq!(t.ip(row), ip(9));
        assert_eq!(t.country(row), "RU".parse().unwrap());
        assert_eq!(t.coords(row).lat, 55.0);
        assert_eq!(t.trig(row).lat, 55.0);
        assert!(t.resolve(ip(7)).is_none());
        let mut rows = Vec::new();
        t.resolve_rows(&[ip(1), ip(7), ip(9)], &mut rows);
        assert_eq!(rows.len(), 2);
        assert_eq!(t.ip(rows[0]), ip(1));
    }

    #[test]
    fn duplicate_bot_ips_are_last_wins() {
        let ds = dataset(
            vec![bot(5, "RU", 55.0, 37.0), bot(5, "DE", 52.0, 13.0)],
            vec![],
        );
        let t = BotTable::build(&ds);
        let idx = BotIndex::build(&ds);
        assert_eq!(t.len(), 1);
        let row = t.resolve(ip(5)).unwrap();
        let (cc, coords) = idx.lookup(ip(5)).unwrap();
        assert_eq!(t.country(row), cc);
        assert_eq!(t.coords(row), coords);
        assert_eq!(t.country(row), "DE".parse().unwrap());
    }

    #[test]
    fn source_table_interns_every_source() {
        let ds = dataset(
            vec![bot(1, "RU", 55.0, 37.0)],
            vec![
                attack(1, vec![1, 2, 1]),
                attack(2, vec![2]),
                attack(3, vec![3]),
            ],
        );
        let bots = BotTable::build(&ds);
        for parallel in [false, true] {
            let s = SourceTable::build(&ds, &bots, parallel);
            assert_eq!(s.participations(), 5);
            assert_eq!(s.dict_len(), 3); // 203.0.113.{1,2,3}
            let a0 = s.ids_of(0);
            assert_eq!(a0.len(), 3);
            assert_eq!(s.ip_of(a0[0]), ip(1));
            assert_eq!(s.ip_of(a0[1]), ip(2));
            assert_eq!(a0[0], a0[2], "same IP, same id");
            assert_eq!(s.bot_row(a0[0]), bots.resolve(ip(1)).unwrap());
            assert_eq!(s.bot_row(a0[1]), NO_BOT);
            let a2 = s.ids_of(2);
            assert_eq!(a2.len(), 1);
            assert_eq!(s.ip_of(a2[0]), ip(3));
            assert_eq!(s.bot_row(a2[0]), NO_BOT, "unknown source has no bot row");
        }
    }

    #[test]
    fn empty_dataset_builds_empty_tables() {
        let ds = dataset(vec![], vec![]);
        let t = BotTable::build(&ds);
        assert!(t.is_empty());
        let s = SourceTable::build(&ds, &t, true);
        assert_eq!(s.dict_len(), 0);
        assert_eq!(s.participations(), 0);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (len, pieces) in [(0, 4), (3, 4), (10, 3), (16, 4), (7, 1)] {
            let ranges = chunk_ranges(len, pieces);
            let covered: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(covered, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            if let (Some(first), Some(last)) = (ranges.first(), ranges.last()) {
                assert_eq!(first.start, 0);
                assert_eq!(last.end, len);
            }
        }
    }

    proptest! {
        /// Satellite: `BotTable` batch resolution agrees with
        /// `BotIndex::lookup`/`coords_of` on arbitrary rosters,
        /// duplicates included.
        #[test]
        fn bot_table_matches_bot_index(
            roster in proptest::collection::vec(
                (0u8..48, prop::sample::select(vec!["US", "RU", "DE"]),
                 -89.0f64..89.0, -179.0f64..179.0),
                0..64,
            ),
            probes in proptest::collection::vec(0u8..64, 0..48),
        ) {
            let bots: Vec<BotRecord> = roster
                .into_iter()
                .map(|(last, cc, lat, lon)| bot(last, cc, lat, lon))
                .collect();
            let ds = dataset(bots, vec![]);
            let table = BotTable::build(&ds);
            let index = BotIndex::build(&ds);
            prop_assert_eq!(table.len(), index.len());
            let probe_ips: Vec<IpAddr4> = probes.iter().map(|&l| ip(l)).collect();
            for &p in &probe_ips {
                match (table.resolve(p), index.lookup(p)) {
                    (Some(row), Some((cc, coords))) => {
                        prop_assert_eq!(table.ip(row), p);
                        prop_assert_eq!(table.country(row), cc);
                        prop_assert_eq!(table.coords(row), coords);
                        prop_assert_eq!(
                            table.trig(row).lat.to_bits(), coords.lat.to_bits()
                        );
                    }
                    (None, None) => {}
                    (a, b) => prop_assert!(false, "diverged: {:?} vs {:?}", a, b.is_some()),
                }
            }
            let mut rows = Vec::new();
            table.resolve_rows(&probe_ips, &mut rows);
            let via_rows: Vec<LatLon> = rows.iter().map(|&r| table.coords(r)).collect();
            prop_assert_eq!(via_rows, index.coords_of(&probe_ips));
            let via_cc: Vec<CountryCode> = rows.iter().map(|&r| table.country(r)).collect();
            prop_assert_eq!(via_cc, index.countries_of(&probe_ips));
        }

        /// The CSR join reproduces every attack's source list exactly,
        /// serial and parallel builds alike.
        #[test]
        fn source_table_round_trips_sources(
            roster in proptest::collection::vec(0u8..32, 0..16),
            source_lists in proptest::collection::vec(
                proptest::collection::vec(0u8..64, 1..12), 0..12,
            ),
        ) {
            let bots: Vec<BotRecord> = roster
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .map(|&l| bot(l, "US", 10.0, 20.0))
                .collect();
            let attacks: Vec<AttackRecord> = source_lists
                .iter()
                .enumerate()
                .map(|(i, s)| attack(i as u64 + 1, s.clone()))
                .collect();
            let ds = dataset(bots, attacks);
            let table = BotTable::build(&ds);
            let index = BotIndex::build(&ds);
            let serial = SourceTable::build(&ds, &table, false);
            let threaded = SourceTable::build(&ds, &table, true);
            for (i, a) in ds.attacks().iter().enumerate() {
                for s in [&serial, &threaded] {
                    let back: Vec<IpAddr4> =
                        s.ids_of(i).iter().map(|&id| s.ip_of(id)).collect();
                    prop_assert_eq!(&back, &a.sources);
                    for &id in s.ids_of(i) {
                        let row = s.bot_row(id);
                        prop_assert_eq!(row != NO_BOT, index.lookup(s.ip_of(id)).is_some());
                        if row != NO_BOT {
                            prop_assert_eq!(table.ip(row), s.ip_of(id));
                        }
                    }
                }
            }
            prop_assert_eq!(serial.dict_len(), threaded.dict_len());
            prop_assert_eq!(&serial.ids, &threaded.ids);
            prop_assert_eq!(serial.bots_len, threaded.bots_len);
            prop_assert_eq!(&serial.dict, &threaded.dict);
        }

        /// Shard-merged tables are bit-equal to tables built
        /// monolithically: duplicate bot IPs across shards arbitrate by
        /// global position (last-wins), and extras promote against bots
        /// the other shard contributed.
        #[test]
        fn merged_tables_match_monolithic(
            roster in proptest::collection::vec(
                (0u8..24, prop::sample::select(vec!["US", "RU", "DE"]),
                 -89.0f64..89.0, -179.0f64..179.0, 1u8..=3),
                0..48,
            ),
            source_lists in proptest::collection::vec(
                proptest::collection::vec(0u8..40, 1..10), 0..12,
            ),
            split in 0usize..13,
        ) {
            let bots: Vec<BotRecord> = roster
                .iter()
                .map(|&(last, cc, lat, lon, _)| bot(last, cc, lat, lon))
                .collect();
            let attacks: Vec<AttackRecord> = source_lists
                .iter()
                .enumerate()
                .map(|(i, s)| attack(i as u64 + 1, s.clone()))
                .collect();
            let ds = dataset(bots, attacks);
            let full_bots = BotTable::build(&ds);
            let full_sources = SourceTable::build(&ds, &full_bots, false);

            // Each record lands on side a, side b, or both (mask bits),
            // so the sides cover the roster like overlapping shards do.
            let side = |want: u8| -> BotTable {
                BotTable::from_records(
                    ds.bots()
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| roster[i].4 & want != 0)
                        .map(|(i, b)| (i as u32, b)),
                )
            };
            let ta = side(1);
            let tb = side(2);
            let split = split.min(ds.len());
            let sa = SourceTable::build_slice(&ds.attacks()[..split], &ta, false);
            let sb = SourceTable::build_slice(&ds.attacks()[split..], &tb, false);

            let (merged, ra, rb) = merge_bot_tables(&ta, &tb);
            prop_assert_eq!(&merged.ips, &full_bots.ips);
            prop_assert_eq!(&merged.countries, &full_bots.countries);
            prop_assert_eq!(&merged.coords, &full_bots.coords);
            prop_assert_eq!(&merged.positions, &full_bots.positions);
            prop_assert_eq!(&merged.trig, &full_bots.trig);

            let (sources, affected) = merge_source_tables(&sa, &sb, &merged, &ra, &rb);
            prop_assert_eq!(&sources.dict, &full_sources.dict);
            prop_assert_eq!(sources.bots_len, full_sources.bots_len);
            prop_assert_eq!(&sources.offsets, &full_sources.offsets);
            prop_assert_eq!(&sources.ids, &full_sources.ids);
            prop_assert_eq!(&sources.unresolved, &full_sources.unresolved);
            prop_assert!(affected.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(affected.iter().all(|&k| (k as usize) < ds.len()));
        }
    }
}
