//! §V — collaborative attacks: concurrent collaborations and multistage
//! (consecutive) attacks.

pub mod concurrent;
pub mod multistage;
