//! §V-B / Figs. 17–18 — multistage (consecutive) attacks.
//!
//! A chain is a run of attacks on one target where each attack starts at
//! the end of the previous one "or within 60 second margin over overlap"
//! — i.e. the gap `next.start − prev.end` lies in `[-60, 60]`. The paper
//! finds only intra-family chains, in four families, the longest being
//! Ddoser's 22-attack chain.

use std::collections::HashMap;

use ddos_schema::{Dataset, Family, IpAddr4, Timestamp};
use ddos_stats::{descriptive, Ecdf};
use serde::{Deserialize, Serialize};

/// Allowed margin around the previous attack's end (seconds).
pub const CHAIN_MARGIN_S: i64 = 60;

/// One consecutive-attack chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chain {
    /// The target under sustained attack.
    pub target: IpAddr4,
    /// Attack indices in start order.
    pub attacks: Vec<usize>,
    /// Distinct families involved (paper: always exactly one).
    pub families: Vec<Family>,
}

impl Chain {
    /// Number of links.
    pub fn len(&self) -> usize {
        self.attacks.len()
    }

    /// Chains always have at least two links.
    pub fn is_empty(&self) -> bool {
        self.attacks.is_empty()
    }

    /// Whether one family ran the whole chain.
    pub fn is_intra_family(&self) -> bool {
        self.families.len() == 1
    }
}

/// The full multistage analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultistageAnalysis {
    /// All chains (length ≥ 2), longest first.
    pub chains: Vec<Chain>,
    /// Gaps between consecutive links, seconds (Fig. 17's sample).
    pub gaps: Vec<i64>,
}

impl MultistageAnalysis {
    /// Finds all chains in the trace.
    pub fn compute(ds: &Dataset) -> MultistageAnalysis {
        let attacks = ds.attacks();
        let mut by_target: HashMap<IpAddr4, Vec<usize>> = HashMap::new();
        for (i, a) in attacks.iter().enumerate() {
            by_target.entry(a.target_ip).or_default().push(i);
        }
        let mut targets: Vec<_> = by_target.into_iter().collect();
        targets.sort_by_key(|&(ip, _)| ip);
        Self::detect(
            attacks,
            targets.iter().map(|&(ip, ref idxs)| (ip, idxs.as_slice())),
        )
    }

    /// Context-based variant of [`MultistageAnalysis::compute`]:
    /// consumes the per-target timelines already grouped and sorted in
    /// the analysis context.
    pub fn compute_ctx(ctx: &crate::context::AnalysisContext) -> MultistageAnalysis {
        Self::detect(
            ctx.dataset.attacks(),
            ctx.target_timelines
                .iter()
                .map(|t| (t.target, t.attacks.as_slice())),
        )
    }

    /// The chaining rule over per-target attack-index lists (sorted by
    /// target IP, indices ascending — both providers guarantee it).
    fn detect<'t>(
        attacks: &[ddos_schema::AttackRecord],
        per_target: impl Iterator<Item = (IpAddr4, &'t [usize])>,
    ) -> MultistageAnalysis {
        let mut chains = Vec::new();
        let mut gaps = Vec::new();
        for (target, idxs) in per_target {
            let mut current: Vec<usize> = Vec::new();
            for &i in idxs {
                match current.last() {
                    Some(&prev) => {
                        let gap = (attacks[i].start - attacks[prev].end).get();
                        if gap.abs() <= CHAIN_MARGIN_S {
                            current.push(i);
                        } else {
                            Self::flush(&mut chains, &mut gaps, attacks, target, &mut current);
                            current.push(i);
                        }
                    }
                    None => current.push(i),
                }
            }
            Self::flush(&mut chains, &mut gaps, attacks, target, &mut current);
        }
        chains.sort_by(|a, b| b.len().cmp(&a.len()).then(a.target.cmp(&b.target)));
        MultistageAnalysis { chains, gaps }
    }

    fn flush(
        chains: &mut Vec<Chain>,
        gaps: &mut Vec<i64>,
        attacks: &[ddos_schema::AttackRecord],
        target: IpAddr4,
        current: &mut Vec<usize>,
    ) {
        if current.len() >= 2 {
            for w in current.windows(2) {
                gaps.push((attacks[w[1]].start - attacks[w[0]].end).get());
            }
            let mut families: Vec<Family> = current.iter().map(|&i| attacks[i].family).collect();
            families.sort_unstable();
            families.dedup();
            chains.push(Chain {
                target,
                attacks: std::mem::take(current),
                families,
            });
        } else {
            current.clear();
        }
    }

    /// The longest chain (paper: 22 links, Ddoser, 2012-08-30).
    pub fn longest(&self) -> Option<&Chain> {
        self.chains.first()
    }

    /// Families that run chains (paper: Darkshell, Ddoser, Dirtjumper,
    /// Nitol — and only intra-family).
    pub fn chain_families(&self) -> Vec<Family> {
        let mut fams: Vec<Family> = self
            .chains
            .iter()
            .flat_map(|c| c.families.iter().copied())
            .collect();
        fams.sort_unstable();
        fams.dedup();
        fams
    }

    /// Fig. 17 — the CDF of consecutive-attack gaps.
    pub fn gap_cdf(&self) -> Option<Ecdf> {
        let xs: Vec<f64> = self.gaps.iter().map(|&g| g as f64).collect();
        Ecdf::new(&xs)
    }

    /// Gap summary (the paper quotes mean, median, std).
    pub fn gap_stats(&self) -> Option<(f64, f64, f64)> {
        let xs: Vec<f64> = self.gaps.iter().map(|&g| g as f64).collect();
        Some((
            descriptive::mean(&xs)?,
            descriptive::median(&xs)?,
            descriptive::std_dev_population(&xs)?,
        ))
    }

    /// Fig. 18 data: every chained attack as `(start, target, family,
    /// magnitude)`.
    pub fn timeline(&self, ds: &Dataset) -> Vec<(Timestamp, IpAddr4, Family, usize)> {
        let attacks = ds.attacks();
        let mut pts: Vec<_> = self
            .chains
            .iter()
            .flat_map(|c| c.attacks.iter())
            .map(|&i| {
                let a = &attacks[i];
                (a.start, a.target_ip, a.family, a.magnitude())
            })
            .collect();
        pts.sort_by_key(|&(t, ip, ..)| (t, ip));
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    #[test]
    fn back_to_back_attacks_form_a_chain() {
        // end of 1 at t=160; next starts at 165 (gap 5), then 230 (gap 5).
        let ds = dataset(vec![
            attack(Family::Ddoser, 1, 100, 60, 1),
            attack(Family::Ddoser, 2, 165, 60, 1),
            attack(Family::Ddoser, 3, 230, 60, 1),
        ]);
        let m = MultistageAnalysis::compute(&ds);
        assert_eq!(m.chains.len(), 1);
        assert_eq!(m.longest().unwrap().len(), 3);
        assert!(m.longest().unwrap().is_intra_family());
        assert_eq!(m.gaps, vec![5, 5]);
        assert_eq!(m.chain_families(), vec![Family::Ddoser]);
        assert_eq!(m.timeline(&ds).len(), 3);
    }

    #[test]
    fn overlap_within_margin_still_chains() {
        // Second attack starts 30 s *before* the first ends.
        let ds = dataset(vec![
            attack(Family::Darkshell, 1, 100, 60, 1),
            attack(Family::Darkshell, 2, 130, 60, 1),
        ]);
        let m = MultistageAnalysis::compute(&ds);
        assert_eq!(m.chains.len(), 1);
        assert_eq!(m.gaps, vec![-30]);
    }

    #[test]
    fn large_gap_breaks_the_chain() {
        let ds = dataset(vec![
            attack(Family::Ddoser, 1, 100, 60, 1),
            attack(Family::Ddoser, 2, 300, 60, 1), // gap 140 > 60
        ]);
        let m = MultistageAnalysis::compute(&ds);
        assert!(m.chains.is_empty());
        assert!(m.gaps.is_empty());
        assert!(m.gap_cdf().is_none());
        assert!(m.longest().is_none());
    }

    #[test]
    fn different_targets_never_chain() {
        let ds = dataset(vec![
            attack(Family::Ddoser, 1, 100, 60, 1),
            attack(Family::Ddoser, 2, 165, 60, 2),
        ]);
        let m = MultistageAnalysis::compute(&ds);
        assert!(m.chains.is_empty());
    }

    #[test]
    fn cross_family_runs_are_detected_but_flagged() {
        let ds = dataset(vec![
            attack(Family::Ddoser, 1, 100, 60, 1),
            attack(Family::Nitol, 2, 165, 60, 1),
        ]);
        let m = MultistageAnalysis::compute(&ds);
        assert_eq!(m.chains.len(), 1);
        assert!(!m.chains[0].is_intra_family());
    }

    #[test]
    fn gap_stats_and_cdf() {
        let ds = dataset(vec![
            attack(Family::Ddoser, 1, 100, 60, 1),
            attack(Family::Ddoser, 2, 163, 60, 1), // gap 3
            attack(Family::Ddoser, 3, 232, 60, 1), // gap 9
        ]);
        let m = MultistageAnalysis::compute(&ds);
        let (mean, median, _) = m.gap_stats().unwrap();
        assert_eq!(mean, 6.0);
        assert_eq!(median, 6.0);
        let cdf = m.gap_cdf().unwrap();
        assert_eq!(cdf.eval(3.0), 0.5);
    }

    #[test]
    fn chains_sorted_longest_first() {
        let ds = dataset(vec![
            attack(Family::Ddoser, 1, 100, 60, 1),
            attack(Family::Ddoser, 2, 165, 60, 1),
            attack(Family::Ddoser, 3, 230, 60, 1),
            attack(Family::Nitol, 4, 100, 60, 2),
            attack(Family::Nitol, 5, 165, 60, 2),
        ]);
        let m = MultistageAnalysis::compute(&ds);
        assert_eq!(m.chains.len(), 2);
        assert_eq!(m.chains[0].len(), 3);
        assert_eq!(m.chains[1].len(), 2);
    }
}
