//! Table VI / Figs. 15–16 — concurrent collaborations.
//!
//! The detection rule (§V): two attacks collaborate when they hit the
//! same target, start within 60 seconds of each other, have durations
//! within half an hour of each other, and come from *different botnets*
//! (different generations of one family → intra-family; different
//! families → inter-family). Counts are qualifying **pairs**; pairs are
//! additionally clustered into **events** (connected components per
//! target) to reproduce Fig. 15's "average 2.19 botnets per
//! collaboration".

use std::collections::{BTreeMap, HashMap, HashSet};

use ddos_schema::{AttackRecord, CountryCode, Dataset, Family, IpAddr4, Timestamp};
use serde::{Deserialize, Serialize};

use crate::kernels::KernelPolicy;

/// Start-time window of the rule (seconds).
pub const START_WINDOW_S: i64 = 60;
/// Duration window of the rule (seconds).
pub const DURATION_WINDOW_S: i64 = 1_800;

/// One qualifying pair (indices into `Dataset::attacks()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollabPair {
    /// First attack (earlier start).
    pub a: usize,
    /// Second attack.
    pub b: usize,
}

/// One collaboration event: a connected component of qualifying pairs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollabEvent {
    /// Attack indices, sorted.
    pub attacks: Vec<usize>,
    /// Distinct botnet generations involved.
    pub botnets: usize,
    /// Distinct families involved (sorted).
    pub families: Vec<Family>,
}

/// The full §V-A concurrent-collaboration analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollabAnalysis {
    /// All qualifying pairs.
    pub pairs: Vec<CollabPair>,
    /// Pair clusters.
    pub events: Vec<CollabEvent>,
    /// Table VI row 1: intra-family pair counts per family.
    pub intra_pairs: BTreeMap<Family, usize>,
    /// Table VI row 2: inter-family pair counts per family (a pair
    /// increments both participants).
    pub inter_pairs: BTreeMap<Family, usize>,
}

impl CollabAnalysis {
    /// Detects all collaborations in the trace.
    pub fn compute(ds: &Dataset) -> CollabAnalysis {
        let attacks = ds.attacks();
        // Group by target; windows are tiny relative to per-target lists.
        let mut by_target: HashMap<IpAddr4, Vec<usize>> = HashMap::new();
        for (i, a) in attacks.iter().enumerate() {
            by_target.entry(a.target_ip).or_default().push(i);
        }
        let mut targets: Vec<_> = by_target.into_iter().collect();
        targets.sort_by_key(|&(ip, _)| ip);
        Self::detect(attacks, targets.iter().map(|(_, idxs)| idxs.as_slice()))
    }

    /// Context-based variant of [`CollabAnalysis::compute`]: consumes
    /// the per-target timelines already grouped and sorted in the
    /// analysis context. Under any policy but
    /// [`KernelPolicy::Reference`] it runs the sort-sweep kernel
    /// ([`CollabAnalysis::detect_sweep`]); the CI smoke gate and the
    /// pass bench hard-assert the two stay byte-identical.
    pub fn compute_ctx(ctx: &crate::context::AnalysisContext) -> CollabAnalysis {
        if ctx.kernels.is_reference() {
            return Self::compute_ctx_reference(ctx);
        }
        let lists: Vec<&[usize]> = ctx
            .target_timelines
            .iter()
            .map(|t| t.attacks.as_slice())
            .collect();
        Self::detect_sweep(ctx.dataset.attacks(), &lists, ctx.kernels)
    }

    /// The reference pairwise detection over the context's timelines —
    /// exposed so benches and the CI smoke gate can pit the sweep
    /// kernel against the scan it replaced.
    pub fn compute_ctx_reference(ctx: &crate::context::AnalysisContext) -> CollabAnalysis {
        Self::detect(
            ctx.dataset.attacks(),
            ctx.target_timelines.iter().map(|t| t.attacks.as_slice()),
        )
    }

    /// The detection rule over per-target attack-index lists. The lists
    /// must arrive sorted by target IP with indices ascending — both
    /// providers guarantee it, which is what keeps the two entry points
    /// byte-identical.
    fn detect<'t>(
        attacks: &[AttackRecord],
        per_target: impl Iterator<Item = &'t [usize]>,
    ) -> CollabAnalysis {
        let mut pairs = Vec::new();

        let mut parent: HashMap<usize, usize> = HashMap::new();
        fn find(parent: &mut HashMap<usize, usize>, x: usize) -> usize {
            let p = *parent.get(&x).unwrap_or(&x);
            if p == x {
                return x;
            }
            let root = find(parent, p);
            parent.insert(x, root);
            root
        }

        for idxs in per_target {
            // idxs are in start order already (attacks() is sorted).
            for (k, &i) in idxs.iter().enumerate() {
                for &j in &idxs[k + 1..] {
                    let (ai, aj) = (&attacks[i], &attacks[j]);
                    if (aj.start - ai.start).get() > START_WINDOW_S {
                        break;
                    }
                    if ai.botnet == aj.botnet {
                        continue;
                    }
                    let ddur = (ai.duration().get() - aj.duration().get()).abs();
                    if ddur > DURATION_WINDOW_S {
                        continue;
                    }
                    pairs.push(CollabPair { a: i, b: j });
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent.insert(ri, rj);
                    }
                }
            }
        }

        // Events: connected components.
        let mut components: HashMap<usize, Vec<usize>> = HashMap::new();
        let members: HashSet<usize> = pairs.iter().flat_map(|p| [p.a, p.b]).collect();
        for &m in &members {
            components.entry(find(&mut parent, m)).or_default().push(m);
        }
        let mut events: Vec<CollabEvent> = components
            .into_values()
            .map(|mut attacks_in| {
                attacks_in.sort_unstable();
                let botnets: HashSet<_> = attacks_in.iter().map(|&i| attacks[i].botnet).collect();
                let mut families: Vec<Family> =
                    attacks_in.iter().map(|&i| attacks[i].family).collect();
                families.sort_unstable();
                families.dedup();
                CollabEvent {
                    botnets: botnets.len(),
                    families,
                    attacks: attacks_in,
                }
            })
            .collect();
        events.sort_by_key(|e| e.attacks[0]);

        // Table VI counts.
        let mut intra_pairs: BTreeMap<Family, usize> = BTreeMap::new();
        let mut inter_pairs: BTreeMap<Family, usize> = BTreeMap::new();
        for p in &pairs {
            let (fa, fb) = (attacks[p.a].family, attacks[p.b].family);
            if fa == fb {
                *intra_pairs.entry(fa).or_default() += 1;
            } else {
                *inter_pairs.entry(fa).or_default() += 1;
                *inter_pairs.entry(fb).or_default() += 1;
            }
        }

        CollabAnalysis {
            pairs,
            events,
            intra_pairs,
            inter_pairs,
        }
    }

    /// The sort-sweep detection kernel. Per target the attack list is
    /// already sorted by start (global trace order), so a sliding
    /// window frontier `hi` — monotone because start gaps grow with the
    /// left endpoint — enumerates exactly the pairs the pairwise scan's
    /// `break` kept, in the same order. Components use an arena
    /// union-find over local positions (no hashing, no recursion), and
    /// members are gathered by one ascending position sweep, so each
    /// event's attack list comes out sorted without the reference's
    /// per-component re-sort.
    ///
    /// Chunking is over the per-target lists: pair runs concatenate in
    /// chunk order (equal to sequential order), per-chunk Table VI maps
    /// merge by addition, and events get one final total sort on their
    /// least attack index — the same sort the reference needs anyway —
    /// so any chunking is byte-identical.
    fn detect_sweep(
        attacks: &[AttackRecord],
        per_target: &[&[usize]],
        policy: KernelPolicy,
    ) -> CollabAnalysis {
        let mut pairs = Vec::new();
        let mut events: Vec<CollabEvent> = Vec::new();
        let mut intra_pairs: BTreeMap<Family, usize> = BTreeMap::new();
        let mut inter_pairs: BTreeMap<Family, usize> = BTreeMap::new();

        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let grand = parent[parent[x as usize] as usize];
                parent[x as usize] = grand;
                x = grand;
            }
            x
        }

        // Reusable per-target arenas.
        let mut parent: Vec<u32> = Vec::new();
        let mut in_pair: Vec<bool> = Vec::new();
        let mut comp_of: Vec<u32> = Vec::new();

        for range in policy.chunks(per_target.len()) {
            let mut chunk_intra: BTreeMap<Family, usize> = BTreeMap::new();
            let mut chunk_inter: BTreeMap<Family, usize> = BTreeMap::new();
            for &idxs in &per_target[range] {
                let m = idxs.len();
                if m < 2 {
                    continue;
                }
                parent.clear();
                parent.extend(0..m as u32);
                in_pair.clear();
                in_pair.resize(m, false);
                let mut target_has_pairs = false;

                let mut hi = 1usize;
                for k in 0..m {
                    let ai = &attacks[idxs[k]];
                    if hi <= k {
                        hi = k + 1;
                    }
                    while hi < m && (attacks[idxs[hi]].start - ai.start).get() <= START_WINDOW_S {
                        hi += 1;
                    }
                    for p in k + 1..hi {
                        let aj = &attacks[idxs[p]];
                        if ai.botnet == aj.botnet {
                            continue;
                        }
                        let ddur = (ai.duration().get() - aj.duration().get()).abs();
                        if ddur > DURATION_WINDOW_S {
                            continue;
                        }
                        pairs.push(CollabPair {
                            a: idxs[k],
                            b: idxs[p],
                        });
                        let (fa, fb) = (ai.family, aj.family);
                        if fa == fb {
                            *chunk_intra.entry(fa).or_default() += 1;
                        } else {
                            *chunk_inter.entry(fa).or_default() += 1;
                            *chunk_inter.entry(fb).or_default() += 1;
                        }
                        in_pair[k] = true;
                        in_pair[p] = true;
                        target_has_pairs = true;
                        let (rk, rp) = (find(&mut parent, k as u32), find(&mut parent, p as u32));
                        if rk != rp {
                            parent[rk as usize] = rp;
                        }
                    }
                }

                if !target_has_pairs {
                    continue;
                }
                // One ascending sweep assigns component ids in
                // first-member order and gathers members pre-sorted.
                const UNASSIGNED: u32 = u32::MAX;
                comp_of.clear();
                comp_of.resize(m, UNASSIGNED);
                let first_event = events.len();
                for p in 0..m {
                    if !in_pair[p] {
                        continue;
                    }
                    let root = find(&mut parent, p as u32) as usize;
                    let event = if comp_of[root] == UNASSIGNED {
                        comp_of[root] = (events.len() - first_event) as u32;
                        events.push(CollabEvent {
                            attacks: Vec::new(),
                            botnets: 0,
                            families: Vec::new(),
                        });
                        events.last_mut().unwrap()
                    } else {
                        &mut events[first_event + comp_of[root] as usize]
                    };
                    event.attacks.push(idxs[p]);
                }
                for event in &mut events[first_event..] {
                    let mut botnets: Vec<_> =
                        event.attacks.iter().map(|&i| attacks[i].botnet).collect();
                    botnets.sort_unstable();
                    botnets.dedup();
                    event.botnets = botnets.len();
                    let mut families: Vec<Family> =
                        event.attacks.iter().map(|&i| attacks[i].family).collect();
                    families.sort_unstable();
                    families.dedup();
                    event.families = families;
                }
            }
            for (f, n) in chunk_intra {
                *intra_pairs.entry(f).or_default() += n;
            }
            for (f, n) in chunk_inter {
                *inter_pairs.entry(f).or_default() += n;
            }
        }
        events.sort_by_key(|e| e.attacks[0]);

        CollabAnalysis {
            pairs,
            events,
            intra_pairs,
            inter_pairs,
        }
    }

    /// Mean number of botnets per event for one family's intra-family
    /// events (the paper: 2.19 for Dirtjumper).
    pub fn mean_botnets_per_event(&self, family: Family) -> Option<f64> {
        let counts: Vec<usize> = self
            .events
            .iter()
            .filter(|e| e.families == [family])
            .map(|e| e.botnets)
            .collect();
        if counts.is_empty() {
            return None;
        }
        Some(counts.iter().sum::<usize>() as f64 / counts.len() as f64)
    }

    /// Fig. 15 data: one family's intra-family collaborating attacks as
    /// `(botnet, date, magnitude)`.
    pub fn intra_family_points(
        &self,
        ds: &Dataset,
        family: Family,
    ) -> Vec<(ddos_schema::BotnetId, Timestamp, usize)> {
        let attacks = ds.attacks();
        self.events
            .iter()
            .filter(|e| e.families == [family])
            .flat_map(|e| e.attacks.iter())
            .map(|&i| {
                let a = &attacks[i];
                (a.botnet, a.start, a.magnitude())
            })
            .collect()
    }
}

/// The §V-A deep dive into one inter-family pairing (the paper studies
/// Dirtjumper × Pandora).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairFocus {
    /// The two families.
    pub families: (Family, Family),
    /// Per-event series: `(start, duration_a, duration_b, magnitude_a,
    /// magnitude_b)` — Fig. 16.
    pub series: Vec<(Timestamp, f64, f64, usize, usize)>,
    /// Unique targets hit by the pairing (paper: 96).
    pub unique_targets: usize,
    /// Countries those targets live in (paper: 16).
    pub countries: Vec<CountryCode>,
    /// Distinct victim organizations (paper: 58).
    pub organizations: usize,
    /// Distinct victim ASes (paper: 61).
    pub asns: usize,
    /// Mean duration of family `a`'s attacks in the pairing (paper:
    /// 5,083 s for Dirtjumper).
    pub mean_duration_a: f64,
    /// Mean duration of family `b`'s attacks (paper: 6,420 s for
    /// Pandora).
    pub mean_duration_b: f64,
}

impl PairFocus {
    /// Analyzes the collaborations between two specific families.
    pub fn compute(
        ds: &Dataset,
        analysis: &CollabAnalysis,
        a: Family,
        b: Family,
    ) -> Option<PairFocus> {
        let attacks = ds.attacks();
        let mut series = Vec::new();
        let mut targets = HashSet::new();
        let mut countries = HashSet::new();
        let mut orgs = HashSet::new();
        let mut asns = HashSet::new();
        let mut dur_a = Vec::new();
        let mut dur_b = Vec::new();
        for p in &analysis.pairs {
            let (ai, aj) = (&attacks[p.a], &attacks[p.b]);
            let (fa, fb) = (ai.family, aj.family);
            let (at, bt) = if fa == a && fb == b {
                (ai, aj)
            } else if fa == b && fb == a {
                (aj, ai)
            } else {
                continue;
            };
            targets.insert(at.target_ip);
            countries.insert(at.target.country);
            orgs.insert(at.target.org);
            asns.insert(at.target.asn);
            dur_a.push(at.duration().as_f64());
            dur_b.push(bt.duration().as_f64());
            series.push((
                at.start.min(bt.start),
                at.duration().as_f64(),
                bt.duration().as_f64(),
                at.magnitude(),
                bt.magnitude(),
            ));
        }
        if series.is_empty() {
            return None;
        }
        series.sort_by_key(|&(t, ..)| t);
        let mut countries: Vec<CountryCode> = countries.into_iter().collect();
        countries.sort_unstable();
        Some(PairFocus {
            families: (a, b),
            unique_targets: targets.len(),
            countries,
            organizations: orgs.len(),
            asns: asns.len(),
            mean_duration_a: dur_a.iter().sum::<f64>() / dur_a.len() as f64,
            mean_duration_b: dur_b.iter().sum::<f64>() / dur_b.len() as f64,
            series,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};
    use ddos_schema::BotnetId;

    #[test]
    fn detects_intra_family_pairs() {
        let mut a1 = attack(Family::Dirtjumper, 1, 100, 600, 1);
        let mut a2 = attack(Family::Dirtjumper, 2, 130, 900, 1);
        a1.botnet = BotnetId(10);
        a2.botnet = BotnetId(11);
        let ds = dataset(vec![a1, a2]);
        let c = CollabAnalysis::compute(&ds);
        assert_eq!(c.pairs.len(), 1);
        assert_eq!(c.intra_pairs.get(&Family::Dirtjumper), Some(&1));
        assert!(c.inter_pairs.is_empty());
        assert_eq!(c.events.len(), 1);
        assert_eq!(c.events[0].botnets, 2);
        assert_eq!(c.mean_botnets_per_event(Family::Dirtjumper), Some(2.0));
        assert_eq!(c.intra_family_points(&ds, Family::Dirtjumper).len(), 2);
    }

    #[test]
    fn same_botnet_never_collaborates_with_itself() {
        let a1 = attack(Family::Dirtjumper, 1, 100, 600, 1);
        let a2 = attack(Family::Dirtjumper, 2, 130, 600, 1); // same botnet id
        let ds = dataset(vec![a1, a2]);
        let c = CollabAnalysis::compute(&ds);
        assert!(c.pairs.is_empty());
    }

    #[test]
    fn windows_are_enforced() {
        // Start 61 s apart: fails the start window.
        let mut a1 = attack(Family::Dirtjumper, 1, 100, 600, 1);
        let mut a2 = attack(Family::Dirtjumper, 2, 161, 600, 1);
        a1.botnet = BotnetId(10);
        a2.botnet = BotnetId(11);
        let ds = dataset(vec![a1.clone(), a2]);
        assert!(CollabAnalysis::compute(&ds).pairs.is_empty());
        // Durations 1,801 s apart: fails the duration window.
        let mut a3 = attack(Family::Dirtjumper, 3, 120, 600 + 1_801, 1);
        a3.botnet = BotnetId(12);
        let ds = dataset(vec![a1, a3]);
        assert!(CollabAnalysis::compute(&ds).pairs.is_empty());
    }

    #[test]
    fn different_targets_never_pair() {
        let mut a1 = attack(Family::Dirtjumper, 1, 100, 600, 1);
        let mut a2 = attack(Family::Dirtjumper, 2, 100, 600, 2);
        a1.botnet = BotnetId(10);
        a2.botnet = BotnetId(11);
        let ds = dataset(vec![a1, a2]);
        assert!(CollabAnalysis::compute(&ds).pairs.is_empty());
    }

    #[test]
    fn inter_family_pairs_count_both_sides() {
        let a1 = attack(Family::Dirtjumper, 1, 100, 600, 1);
        let a2 = attack(Family::Pandora, 2, 110, 700, 1);
        let ds = dataset(vec![a1, a2]);
        let c = CollabAnalysis::compute(&ds);
        assert_eq!(c.inter_pairs.get(&Family::Dirtjumper), Some(&1));
        assert_eq!(c.inter_pairs.get(&Family::Pandora), Some(&1));
        assert_eq!(c.events[0].families.len(), 2);
    }

    #[test]
    fn chains_of_pairs_merge_into_one_event() {
        let mut a1 = attack(Family::Dirtjumper, 1, 100, 600, 1);
        let mut a2 = attack(Family::Dirtjumper, 2, 140, 600, 1);
        let mut a3 = attack(Family::Dirtjumper, 3, 180, 600, 1);
        a1.botnet = BotnetId(10);
        a2.botnet = BotnetId(11);
        a3.botnet = BotnetId(12);
        let ds = dataset(vec![a1, a2, a3]);
        let c = CollabAnalysis::compute(&ds);
        // (1,2) and (2,3) qualify; (1,3) start 80 s apart does not — but
        // the union-find still merges all three into one event.
        assert_eq!(c.pairs.len(), 2);
        assert_eq!(c.events.len(), 1);
        assert_eq!(c.events[0].botnets, 3);
    }

    #[test]
    fn sweep_matches_pairwise_for_every_chunking() {
        // Chains, shared starts, duration-window rejections, and
        // several interleaved targets.
        let mut attacks_v = Vec::new();
        let fams = [
            Family::Dirtjumper,
            Family::Pandora,
            Family::Blackenergy,
            Family::Nitol,
        ];
        for n in 0..28u8 {
            let mut a = attack(
                fams[(n % 4) as usize],
                u64::from(n) + 1,
                i64::from(n / 2) * 40,
                600 + i64::from(n % 5) * 700,
                n % 3,
            );
            a.botnet = BotnetId(u32::from(n % 7));
            attacks_v.push(a);
        }
        let ds = dataset(attacks_v);
        let expect = CollabAnalysis::compute(&ds);
        assert!(!expect.pairs.is_empty(), "fixture must exercise pairs");
        for policy in [
            KernelPolicy::Reference,
            KernelPolicy::Auto,
            KernelPolicy::Chunked(1),
            KernelPolicy::Chunked(2),
            KernelPolicy::Chunked(100),
        ] {
            let ctx = crate::context::AnalysisContext::new(&ds).with_kernels(policy);
            assert_eq!(CollabAnalysis::compute_ctx(&ctx), expect, "{policy:?}");
        }
    }

    #[test]
    fn pair_focus_extracts_the_flagship_stats() {
        let a1 = attack(Family::Dirtjumper, 1, 100, 5_000, 1);
        let a2 = attack(Family::Pandora, 2, 120, 6_400, 1);
        let a3 = attack(Family::Dirtjumper, 3, 9_000, 5_200, 2);
        let a4 = attack(Family::Pandora, 4, 9_030, 6_500, 2);
        let ds = dataset(vec![a1, a2, a3, a4]);
        let c = CollabAnalysis::compute(&ds);
        let focus = PairFocus::compute(&ds, &c, Family::Dirtjumper, Family::Pandora).unwrap();
        assert_eq!(focus.unique_targets, 2);
        assert_eq!(focus.series.len(), 2);
        assert!((focus.mean_duration_a - 5_100.0).abs() < 1.0);
        assert!((focus.mean_duration_b - 6_450.0).abs() < 1.0);
        assert!(PairFocus::compute(&ds, &c, Family::Nitol, Family::Yzf).is_none());
    }
}
