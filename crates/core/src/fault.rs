//! Pipeline-level fault surface.
//!
//! [`PipelineError`] is what the fallible `try_*` entry points on
//! [`crate::pipeline::AnalysisReport`] and the scheduler's
//! [`crate::passes::try_execute_filtered`] return when a named
//! failpoint (see `ddos-failpoints`) injects a failure mid-run. The
//! crate-internal [`check`] shim consults the seam and counts every
//! injection on the [`ddos_obs::names::FAULTS_INJECTED`] counter, so
//! fault tests can assert the error they saw was the one they
//! scheduled. With the `failpoints` feature off (or in release
//! builds), `check` compiles to `Ok(())`.

use std::fmt;

use ddos_obs::Obs;

/// An error surfaced by a fallible pipeline entry point.
///
/// Today the only source is the fault-injection seam; the enum is
/// non-exhaustive so real recoverable failures (e.g. a poisoned epoch
/// source) can join it without breaking matches.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// A failpoint fired: `failpoint` names the seam location and
    /// `hit` is the zero-based consult index the plan failed on.
    Fault {
        /// Failpoint name (one of `ddos_failpoints::names`).
        failpoint: String,
        /// Zero-based hit index at which the plan fired.
        hit: u64,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Fault { failpoint, hit } => {
                write!(f, "injected fault at {failpoint} (hit {hit})")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

// Canonical names come from ddos-failpoints when the seam is compiled
// in; the feature-off fallbacks only keep call sites compiling (the
// stub `check` ignores its argument).
#[cfg(feature = "failpoints")]
pub(crate) use ddos_failpoints::names::{EPOCH_MERGE, SCHEDULER_PASS};

#[cfg(not(feature = "failpoints"))]
mod names_off {
    pub const EPOCH_MERGE: &str = "epoch/merge";
    pub const SCHEDULER_PASS: &str = "scheduler/pass";
}
#[cfg(not(feature = "failpoints"))]
pub(crate) use names_off::*;

/// Consult the failpoint `name`; `Err` when the installed plan
/// schedules a failure for this hit. Every injection bumps the
/// `faults/injected` counter on `obs` before surfacing.
#[cfg(feature = "failpoints")]
#[inline]
pub(crate) fn check(name: &str, obs: &Obs) -> Result<(), PipelineError> {
    match ddos_failpoints::check(name) {
        Some(injected) => {
            obs.counter(ddos_obs::names::FAULTS_INJECTED).inc();
            Err(PipelineError::Fault {
                failpoint: injected.name,
                hit: injected.hit,
            })
        }
        None => Ok(()),
    }
}

/// Feature-off stub: always succeeds, compiles to nothing.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub(crate) fn check(_name: &str, _obs: &Obs) -> Result<(), PipelineError> {
    Ok(())
}

/// Maps an error out of an infallible entry point. Reachable only when
/// a fault plan is installed under a non-`try_*` API — a test-harness
/// bug, not a data condition — so the message says which API to use.
#[inline]
pub(crate) fn infallible<T>(r: Result<T, PipelineError>) -> T {
    r.unwrap_or_else(|e| {
        panic!("fault injected under an infallible pipeline entry point ({e}); use the try_* variant under a FailPlan")
    })
}
