//! The analysis-pass registry and scheduler.
//!
//! Every section of the report is produced by one [`PassSpec`]: a named
//! pure function from the shared [`AnalysisContext`] (plus any
//! already-finished passes it depends on) to one [`PassOutput`]. The
//! [`execute`] driver schedules the registry in dependency stages and —
//! when asked — runs the passes of a stage on scoped threads. Because
//! passes are pure functions of the context and their declared
//! dependencies, the parallel schedule produces a report byte-identical
//! to the serial one; only the recorded telemetry differs.
//!
//! Observability: [`execute`] records one `passes/<name>` span per pass
//! and one `scheduler/stage<i>` span per dependency stage into the
//! [`Obs`] it is handed, plus a `scheduler/wait_us` histogram of
//! spawn-to-start latency on threaded stages — the run's scheduler
//! behavior, captured without touching report bytes.
//!
//! # Adding a pass
//!
//! 1. Add the output variant to [`PassOutput`] and a slot to
//!    [`PartialReport`] (and wire it through `PartialReport::apply`).
//! 2. Write the pass function (`fn(&AnalysisContext, &PartialReport) ->
//!    PassOutput`) and append a [`PassSpec`] to [`REGISTRY`], listing in
//!    `deps` the names of any passes whose output it reads.
//! 3. Consume the slot in `AnalysisReport`'s assembly
//!    (`PartialReport::into_report`).

use std::collections::HashSet;

use ddos_obs::Obs;
use ddos_schema::{CountryCode, Family};

use crate::collab::concurrent::{CollabAnalysis, PairFocus};
use crate::collab::multistage::MultistageAnalysis;
use crate::context::AnalysisContext;
use crate::defense::{latency_sweep_from_durations, BlacklistSim, LatencyPoint};
use crate::fault::{self, PipelineError};
use crate::overview::activity::{activity_levels, FamilyActivity};
use crate::overview::daily::DailyDistribution;
use crate::overview::duration::DurationAnalysis;
use crate::overview::intervals::{starts_to_intervals, ConcurrencyAnalysis, IntervalStats};
use crate::overview::protocols::{protocol_preferences, ProtocolFamilyRow, ProtocolPopularity};
use crate::source::dispersion::{qualifying_families_ctx, FamilyDispersion};
use crate::source::prediction::PredictionAnalysis;
use crate::source::shift::ShiftAnalysis;
use crate::summary::SummaryComparison;
use crate::target::country::{all_profiles_ctx, overall_top_countries_ctx, FamilyCountryProfile};
use crate::target::recurrence::RecurrenceAnalysis;

/// The detection-latency grid of the report (§III-D: 1 min, 10 min,
/// 1 h, 4 h, 1 day).
pub const LATENCY_GRID_S: &[f64] = &[60.0, 600.0, 3_600.0, 4.0 * 3_600.0, 86_400.0];

/// One independently-invalidated part of the [`AnalysisContext`].
///
/// Every pass declares which parts it reads ([`PassSpec::reads`]); the
/// incremental pipeline tracks which parts an epoch append changed and
/// re-runs only the passes whose inputs moved ([`passes_dirtied_by`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtxPart {
    /// The attack records themselves (`ctx.dataset.attacks()`,
    /// `ctx.all_starts`, and everything derived per-attack on the fly).
    Attacks,
    /// The bot roster (`ctx.dataset.bots()`, `ctx.bot_table`).
    Bots,
    /// The per-attack duration column (`ctx.durations`).
    Durations,
    /// The per-target attack timelines (`ctx.target_timelines`).
    Timelines,
    /// The per-family contexts: starts, dispersion series, weekly bot
    /// maps (`ctx.families()`).
    Families,
    /// The attack→source join (`ctx.sources`).
    Sources,
}

/// The output of one pass — one report section.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // variant names mirror the report fields
pub enum PassOutput {
    Protocols(ProtocolPopularity),
    ProtocolRows(Vec<ProtocolFamilyRow>),
    Summary(SummaryComparison),
    Daily(DailyDistribution),
    IntervalStats(Vec<(Family, Option<IntervalStats>)>),
    AllIntervalStats(Option<IntervalStats>),
    Concurrency(ConcurrencyAnalysis),
    Durations(Option<DurationAnalysis>),
    Shifts(ShiftAnalysis),
    Dispersion(Vec<FamilyDispersion>),
    Prediction(PredictionAnalysis),
    TargetCountries(Vec<FamilyCountryProfile>),
    OverallTargets(Vec<(CountryCode, usize)>),
    Collaborations(CollabAnalysis),
    FlagshipPair(Option<PairFocus>),
    Multistage(MultistageAnalysis),
    Activity(Vec<FamilyActivity>),
    Recurrence(RecurrenceAnalysis),
    Blacklist(BlacklistSim),
    Latency(Vec<LatencyPoint>),
}

/// The report under construction: one optional slot per section.
#[derive(Debug, Clone, Default)]
#[allow(missing_docs)] // field names mirror the report fields
pub struct PartialReport {
    pub protocols: Option<ProtocolPopularity>,
    pub protocol_rows: Option<Vec<ProtocolFamilyRow>>,
    pub summary: Option<SummaryComparison>,
    pub daily: Option<DailyDistribution>,
    pub interval_stats: Option<Vec<(Family, Option<IntervalStats>)>>,
    pub all_interval_stats: Option<Option<IntervalStats>>,
    pub concurrency: Option<ConcurrencyAnalysis>,
    pub durations: Option<Option<DurationAnalysis>>,
    pub shifts: Option<ShiftAnalysis>,
    pub dispersion: Option<Vec<FamilyDispersion>>,
    pub prediction: Option<PredictionAnalysis>,
    pub target_countries: Option<Vec<FamilyCountryProfile>>,
    pub overall_targets: Option<Vec<(CountryCode, usize)>>,
    pub collaborations: Option<CollabAnalysis>,
    pub flagship_pair: Option<Option<PairFocus>>,
    pub multistage: Option<MultistageAnalysis>,
    pub activity: Option<Vec<FamilyActivity>>,
    pub recurrence: Option<RecurrenceAnalysis>,
    pub blacklist: Option<BlacklistSim>,
    pub latency: Option<Vec<LatencyPoint>>,
}

impl PartialReport {
    /// Stores one pass's output in its slot.
    pub fn apply(&mut self, output: PassOutput) {
        match output {
            PassOutput::Protocols(v) => self.protocols = Some(v),
            PassOutput::ProtocolRows(v) => self.protocol_rows = Some(v),
            PassOutput::Summary(v) => self.summary = Some(v),
            PassOutput::Daily(v) => self.daily = Some(v),
            PassOutput::IntervalStats(v) => self.interval_stats = Some(v),
            PassOutput::AllIntervalStats(v) => self.all_interval_stats = Some(v),
            PassOutput::Concurrency(v) => self.concurrency = Some(v),
            PassOutput::Durations(v) => self.durations = Some(v),
            PassOutput::Shifts(v) => self.shifts = Some(v),
            PassOutput::Dispersion(v) => self.dispersion = Some(v),
            PassOutput::Prediction(v) => self.prediction = Some(v),
            PassOutput::TargetCountries(v) => self.target_countries = Some(v),
            PassOutput::OverallTargets(v) => self.overall_targets = Some(v),
            PassOutput::Collaborations(v) => self.collaborations = Some(v),
            PassOutput::FlagshipPair(v) => self.flagship_pair = Some(v),
            PassOutput::Multistage(v) => self.multistage = Some(v),
            PassOutput::Activity(v) => self.activity = Some(v),
            PassOutput::Recurrence(v) => self.recurrence = Some(v),
            PassOutput::Blacklist(v) => self.blacklist = Some(v),
            PassOutput::Latency(v) => self.latency = Some(v),
        }
    }
}

/// One registered analysis pass.
pub struct PassSpec {
    /// Unique pass name (also the `deps` vocabulary).
    pub name: &'static str,
    /// Names of the passes whose output this pass reads.
    pub deps: &'static [&'static str],
    /// The context parts this pass reads. The incremental pipeline
    /// re-runs the pass only when one of them changed; an understated
    /// list here silently serves stale sections, so when in doubt list
    /// the superset.
    pub reads: &'static [CtxPart],
    /// The pass body. Must be a pure function of the context and the
    /// declared dependencies' slots in the partial report; the observer
    /// is for `kernels/*` telemetry only and never changes the output.
    pub run: fn(&AnalysisContext, &PartialReport, &Obs) -> PassOutput,
}

/// Records one gated pass body's kernel telemetry: how many chunks its
/// policy splits `items` into (`kernels/chunks`), skipped under
/// [`KernelPolicy::Reference`] where no chunked kernel runs.
///
/// [`KernelPolicy::Reference`]: crate::kernels::KernelPolicy::Reference
fn record_kernel_chunks(ctx: &AnalysisContext, obs: &Obs, items: usize) {
    if !ctx.kernels.is_reference() {
        obs.histogram("kernels/chunks")
            .record(ctx.kernels.chunks(items).len() as u64);
    }
}

fn pass_protocols(ctx: &AnalysisContext, _: &PartialReport, _obs: &Obs) -> PassOutput {
    PassOutput::Protocols(ProtocolPopularity::compute(ctx.dataset))
}

fn pass_protocol_rows(ctx: &AnalysisContext, _: &PartialReport, _obs: &Obs) -> PassOutput {
    PassOutput::ProtocolRows(protocol_preferences(ctx.dataset))
}

fn pass_summary(ctx: &AnalysisContext, _: &PartialReport, _obs: &Obs) -> PassOutput {
    PassOutput::Summary(SummaryComparison::compute(ctx.dataset))
}

fn pass_daily(ctx: &AnalysisContext, _: &PartialReport, obs: &Obs) -> PassOutput {
    let _k = obs.span("kernels/daily");
    record_kernel_chunks(ctx, obs, ctx.all_starts.len());
    PassOutput::Daily(DailyDistribution::compute_ctx(ctx))
}

fn pass_interval_stats(ctx: &AnalysisContext, _: &PartialReport, obs: &Obs) -> PassOutput {
    let _k = obs.span("kernels/interval_stats");
    PassOutput::IntervalStats(
        ctx.families()
            .iter()
            .map(|fc| {
                let ivs = starts_to_intervals(&fc.starts);
                // The scalar interval fold measured slower chunked than
                // reference, so Auto routes to the reference body; only
                // an explicit Chunked(_) forces the kernel on.
                let stats = if ctx.kernels.forced_chunked() {
                    record_kernel_chunks(ctx, obs, ivs.len());
                    IntervalStats::compute_kernel(&ivs, ctx.kernels)
                } else {
                    IntervalStats::compute(&ivs)
                };
                (fc.family, stats)
            })
            .collect(),
    )
}

fn pass_all_interval_stats(ctx: &AnalysisContext, _: &PartialReport, obs: &Obs) -> PassOutput {
    let _k = obs.span("kernels/all_interval_stats");
    let ivs = starts_to_intervals(&ctx.all_starts);
    record_kernel_chunks(ctx, obs, ivs.len());
    PassOutput::AllIntervalStats(if ctx.kernels.is_reference() {
        IntervalStats::compute(&ivs)
    } else {
        IntervalStats::compute_kernel(&ivs, ctx.kernels)
    })
}

fn pass_concurrency(ctx: &AnalysisContext, _: &PartialReport, _obs: &Obs) -> PassOutput {
    PassOutput::Concurrency(ConcurrencyAnalysis::compute_ctx(ctx))
}

fn pass_durations(ctx: &AnalysisContext, _: &PartialReport, obs: &Obs) -> PassOutput {
    let _k = obs.span("kernels/durations");
    record_kernel_chunks(ctx, obs, ctx.durations.len());
    PassOutput::Durations(DurationAnalysis::compute_ctx(ctx))
}

fn pass_shifts(ctx: &AnalysisContext, _: &PartialReport, obs: &Obs) -> PassOutput {
    let _k = obs.span("kernels/shifts");
    record_kernel_chunks(ctx, obs, ctx.dataset.window().num_weeks());
    PassOutput::Shifts(ShiftAnalysis::compute_ctx(ctx))
}

fn pass_dispersion(ctx: &AnalysisContext, _: &PartialReport, _obs: &Obs) -> PassOutput {
    PassOutput::Dispersion(qualifying_families_ctx(ctx))
}

fn pass_prediction(ctx: &AnalysisContext, _: &PartialReport, _obs: &Obs) -> PassOutput {
    PassOutput::Prediction(PredictionAnalysis::compute_ctx(ctx))
}

fn pass_target_countries(ctx: &AnalysisContext, _: &PartialReport, obs: &Obs) -> PassOutput {
    let _k = obs.span("kernels/target_countries");
    record_kernel_chunks(ctx, obs, ctx.dataset.len());
    PassOutput::TargetCountries(all_profiles_ctx(ctx))
}

fn pass_overall_targets(ctx: &AnalysisContext, _: &PartialReport, obs: &Obs) -> PassOutput {
    let _k = obs.span("kernels/overall_targets");
    record_kernel_chunks(ctx, obs, ctx.dataset.len());
    PassOutput::OverallTargets(overall_top_countries_ctx(ctx, 5))
}

fn pass_collaborations(ctx: &AnalysisContext, _: &PartialReport, obs: &Obs) -> PassOutput {
    let _k = obs.span("kernels/collaborations");
    record_kernel_chunks(ctx, obs, ctx.target_timelines.len());
    PassOutput::Collaborations(CollabAnalysis::compute_ctx(ctx))
}

fn pass_flagship_pair(ctx: &AnalysisContext, partial: &PartialReport, _obs: &Obs) -> PassOutput {
    let collab = partial
        .collaborations
        .as_ref()
        .expect("scheduler ran flagship_pair before its collaborations dependency");
    PassOutput::FlagshipPair(PairFocus::compute(
        ctx.dataset,
        collab,
        Family::Dirtjumper,
        Family::Pandora,
    ))
}

fn pass_multistage(ctx: &AnalysisContext, _: &PartialReport, _obs: &Obs) -> PassOutput {
    PassOutput::Multistage(MultistageAnalysis::compute_ctx(ctx))
}

fn pass_activity(ctx: &AnalysisContext, _: &PartialReport, _obs: &Obs) -> PassOutput {
    PassOutput::Activity(activity_levels(ctx.dataset))
}

fn pass_recurrence(ctx: &AnalysisContext, _: &PartialReport, obs: &Obs) -> PassOutput {
    let _k = obs.span("kernels/recurrence");
    record_kernel_chunks(ctx, obs, ctx.target_timelines.len());
    PassOutput::Recurrence(RecurrenceAnalysis::compute_ctx(ctx))
}

fn pass_blacklist(ctx: &AnalysisContext, _: &PartialReport, obs: &Obs) -> PassOutput {
    let _k = obs.span("kernels/blacklist");
    // Auto routes this pass to the reference replay (see
    // `BlacklistSim::run_ctx`), so only a forced chunking runs — and
    // records — the fused kernel.
    if ctx.kernels.forced_chunked() {
        record_kernel_chunks(ctx, obs, ctx.target_timelines.len());
    }
    PassOutput::Blacklist(BlacklistSim::run_ctx(ctx))
}

fn pass_latency(ctx: &AnalysisContext, _: &PartialReport, _obs: &Obs) -> PassOutput {
    PassOutput::Latency(latency_sweep_from_durations(&ctx.durations, LATENCY_GRID_S))
}

/// Every pass of the report, in registry order. The only inter-pass
/// dependency is `flagship_pair` → `collaborations`; everything else
/// reads the context alone.
pub const REGISTRY: &[PassSpec] = &[
    PassSpec {
        name: "protocols",
        deps: &[],
        reads: &[CtxPart::Attacks],
        run: pass_protocols,
    },
    PassSpec {
        name: "protocol_rows",
        deps: &[],
        reads: &[CtxPart::Attacks],
        run: pass_protocol_rows,
    },
    PassSpec {
        name: "summary",
        deps: &[],
        reads: &[CtxPart::Attacks, CtxPart::Bots],
        run: pass_summary,
    },
    PassSpec {
        name: "daily",
        deps: &[],
        reads: &[CtxPart::Attacks],
        run: pass_daily,
    },
    PassSpec {
        name: "interval_stats",
        deps: &[],
        reads: &[CtxPart::Families],
        run: pass_interval_stats,
    },
    PassSpec {
        name: "all_interval_stats",
        deps: &[],
        reads: &[CtxPart::Attacks],
        run: pass_all_interval_stats,
    },
    PassSpec {
        name: "concurrency",
        deps: &[],
        reads: &[CtxPart::Attacks, CtxPart::Timelines],
        run: pass_concurrency,
    },
    PassSpec {
        name: "durations",
        deps: &[],
        reads: &[CtxPart::Attacks, CtxPart::Durations],
        run: pass_durations,
    },
    PassSpec {
        name: "shifts",
        deps: &[],
        reads: &[CtxPart::Families],
        run: pass_shifts,
    },
    PassSpec {
        name: "dispersion",
        deps: &[],
        reads: &[CtxPart::Families],
        run: pass_dispersion,
    },
    PassSpec {
        name: "prediction",
        deps: &[],
        reads: &[CtxPart::Families],
        run: pass_prediction,
    },
    PassSpec {
        name: "target_countries",
        deps: &[],
        reads: &[CtxPart::Attacks],
        run: pass_target_countries,
    },
    PassSpec {
        name: "overall_targets",
        deps: &[],
        reads: &[CtxPart::Attacks],
        run: pass_overall_targets,
    },
    PassSpec {
        name: "collaborations",
        deps: &[],
        reads: &[CtxPart::Attacks, CtxPart::Timelines],
        run: pass_collaborations,
    },
    PassSpec {
        name: "flagship_pair",
        deps: &["collaborations"],
        reads: &[CtxPart::Attacks],
        run: pass_flagship_pair,
    },
    PassSpec {
        name: "multistage",
        deps: &[],
        reads: &[CtxPart::Attacks, CtxPart::Timelines],
        run: pass_multistage,
    },
    PassSpec {
        name: "activity",
        deps: &[],
        reads: &[CtxPart::Attacks],
        run: pass_activity,
    },
    PassSpec {
        name: "recurrence",
        deps: &[],
        reads: &[CtxPart::Attacks, CtxPart::Timelines],
        run: pass_recurrence,
    },
    PassSpec {
        name: "blacklist",
        deps: &[],
        reads: &[CtxPart::Attacks, CtxPart::Sources, CtxPart::Timelines],
        run: pass_blacklist,
    },
    PassSpec {
        name: "latency",
        deps: &[],
        reads: &[CtxPart::Durations],
        run: pass_latency,
    },
];

/// What one pass run yields: `(name, output, start_us, end_us)`, or the
/// injected fault that stopped it.
type PassRun = Result<(&'static str, PassOutput, u64, u64), PipelineError>;

/// Runs one pass, stamping its start/end offsets off the observer's
/// clock (offsets are recorded by the driver after the join, so worker
/// threads never contend on the span sink mid-stage).
fn run_pass(
    pass: &'static PassSpec,
    ctx: &AnalysisContext,
    partial: &PartialReport,
    obs: &Obs,
) -> PassRun {
    fault::check(fault::SCHEDULER_PASS, obs)?;
    let start_us = obs.now_us();
    let out = (pass.run)(ctx, partial, obs);
    Ok((pass.name, out, start_us, obs.now_us()))
}

/// The set of passes whose inputs a change to `parts` invalidates.
///
/// A pass is dirtied directly when one of its [`PassSpec::reads`] parts
/// changed, and transitively when one of its `deps` is dirtied (its
/// input *report slots* moved even if its context parts did not). The
/// closure is computed to a fixpoint, so chains of dependencies any
/// length re-run together.
pub fn passes_dirtied_by(parts: &[CtxPart]) -> HashSet<&'static str> {
    let mut dirty: HashSet<&'static str> = REGISTRY
        .iter()
        .filter(|p| p.reads.iter().any(|r| parts.contains(r)))
        .map(|p| p.name)
        .collect();
    loop {
        let before = dirty.len();
        for p in REGISTRY {
            if p.deps.iter().any(|d| dirty.contains(d)) {
                dirty.insert(p.name);
            }
        }
        if dirty.len() == before {
            return dirty;
        }
    }
}

/// Runs the whole registry against a context, recording telemetry into
/// `obs` (hand it [`Obs::disabled`] for an uninstrumented run).
///
/// Passes are grouped into stages: a stage holds every not-yet-run pass
/// whose dependencies have all finished. With `parallel` set, the passes
/// of a stage run on scoped threads ([`crossbeam::thread::scope`]);
/// results are joined in registry order, so the assembled report — and
/// even the order of the recorded pass spans — does not depend on thread
/// interleaving. Serial execution is the fallback and runs the exact
/// same functions in the exact same order.
pub fn execute(ctx: &AnalysisContext, parallel: bool, obs: &Obs) -> PartialReport {
    fault::infallible(try_execute(ctx, parallel, obs))
}

/// Fallible [`execute`]: returns `Err` instead of panicking when the
/// `scheduler/pass` failpoint injects a failure mid-run. On `Err` the
/// partially filled report is discarded; re-running without the fault
/// plan reproduces the golden report (the scheduler holds no state
/// across calls).
pub fn try_execute(
    ctx: &AnalysisContext,
    parallel: bool,
    obs: &Obs,
) -> Result<PartialReport, PipelineError> {
    let mut partial = PartialReport::default();
    let include: HashSet<&'static str> = REGISTRY.iter().map(|p| p.name).collect();
    try_execute_filtered(ctx, parallel, obs, &mut partial, &include)?;
    Ok(partial)
}

/// Runs only the passes named in `include` against a context, updating
/// `partial` in place and leaving every other slot untouched.
///
/// This is [`execute`] restricted to a subset: the incremental pipeline
/// hands it the dirty set after each epoch append, so clean sections
/// keep their previous output. A dependency of an included pass counts
/// as satisfied when it has either run in this call or is *not*
/// included (its slot still holds the previous — clean — output).
/// Telemetry shape is unchanged: one `passes/<name>` span per pass run,
/// one `scheduler/stage<i>` span per stage.
pub fn execute_filtered(
    ctx: &AnalysisContext,
    parallel: bool,
    obs: &Obs,
    partial: &mut PartialReport,
    include: &HashSet<&'static str>,
) {
    fault::infallible(try_execute_filtered(ctx, parallel, obs, partial, include))
}

/// Fallible [`execute_filtered`]: the `scheduler/pass` failpoint is
/// consulted once per pass (in registry order on the serial path), and
/// an injection surfaces as `Err` with the whole stage's other outputs
/// discarded — `partial` keeps the slots of every *completed* stage but
/// none from the failed one, so a caller either finishes cleanly or
/// throws the partial away. Error selection is deterministic: within a
/// failing stage the error of the earliest pass in registry order wins,
/// regardless of thread interleaving.
pub fn try_execute_filtered(
    ctx: &AnalysisContext,
    parallel: bool,
    obs: &Obs,
    partial: &mut PartialReport,
    include: &HashSet<&'static str>,
) -> Result<(), PipelineError> {
    let wait_hist = obs.histogram("scheduler/wait_us");
    let stage_counter = obs.counter("scheduler/stages");
    let mut done: HashSet<&'static str> = HashSet::new();
    let mut remaining: Vec<&'static PassSpec> = REGISTRY
        .iter()
        .filter(|p| include.contains(p.name))
        .collect();
    let mut stage_idx = 0usize;
    while !remaining.is_empty() {
        let (stage, rest): (Vec<_>, Vec<_>) = remaining.into_iter().partition(|p| {
            p.deps
                .iter()
                .all(|d| done.contains(d) || !include.contains(d))
        });
        assert!(
            !stage.is_empty(),
            "pass registry has a dependency cycle or an unknown dep name"
        );
        remaining = rest;
        let stage_start = obs.now_us();
        let threaded = parallel && stage.len() > 1;
        let mut results: Vec<PassRun> = if threaded {
            let partial_ref: &PartialReport = partial;
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = stage
                    .iter()
                    .map(|&p| scope.spawn(move |_| run_pass(p, ctx, partial_ref, obs)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("analysis pass panicked"))
                    .collect()
            })
            .expect("analysis pass scope panicked")
        } else {
            stage
                .iter()
                .map(|&p| run_pass(p, ctx, partial, obs))
                .collect()
        };
        // Surface the earliest failure (stage order == registry order)
        // before applying anything: a failed stage contributes no
        // slots, so `partial` never mixes outputs with an error.
        if let Some(i) = results.iter().position(|r| r.is_err()) {
            return Err(results.swap_remove(i).expect_err("position said Err"));
        }
        for r in results {
            let (name, out, start_us, end_us) = r.expect("stage errors handled above");
            if threaded {
                // Spawn-to-start latency: how long the pass sat between
                // the stage opening and its thread actually running it.
                wait_hist.record(start_us.saturating_sub(stage_start));
            }
            obs.record_span(format!("passes/{name}"), start_us, end_us);
            partial.apply(out);
            done.insert(name);
        }
        obs.record_span(
            format!("scheduler/stage{stage_idx}"),
            stage_start,
            obs.now_us(),
        );
        stage_counter.inc();
        stage_idx += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    #[test]
    fn every_pass_declares_its_reads() {
        for p in REGISTRY {
            assert!(!p.reads.is_empty(), "{} declares no context reads", p.name);
        }
    }

    #[test]
    fn dirtiness_propagates_through_pass_deps() {
        // flagship_pair reads only Attacks, but depends on
        // collaborations, which reads Timelines: a Timelines-only
        // change must re-run both.
        let dirty = passes_dirtied_by(&[CtxPart::Timelines]);
        assert!(dirty.contains("collaborations"));
        assert!(dirty.contains("flagship_pair"));
        assert!(!dirty.contains("protocols"));
        // A Durations-only change touches exactly the duration readers.
        let dirty = passes_dirtied_by(&[CtxPart::Durations]);
        assert_eq!(
            dirty,
            HashSet::from(["durations", "latency"]),
            "unexpected Durations readers"
        );
        assert!(passes_dirtied_by(&[]).is_empty());
    }

    #[test]
    fn execute_filtered_reruns_only_the_included_passes() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Pandora, 2, 120, 700, 1),
        ]);
        let ctx = AnalysisContext::new(&ds);
        let mut partial = execute(&ctx, false, &Obs::disabled());
        let stale_summary = partial.summary;
        partial.daily = None; // sentinel: not included, must stay None
        let obs = Obs::enabled();
        let include = HashSet::from(["flagship_pair", "protocols"]);
        execute_filtered(&ctx, false, &obs, &mut partial, &include);
        let t = obs.finish(false);
        assert_eq!(t.spans_under("passes").count(), include.len());
        assert!(t.span("passes/flagship_pair").is_some());
        assert!(partial.daily.is_none(), "excluded pass ran");
        assert_eq!(partial.summary, stale_summary, "excluded slot changed");
        // flagship_pair's collaborations dep was satisfied by the
        // existing slot, not re-run.
        assert!(t.span("passes/collaborations").is_none());
    }

    #[test]
    fn registry_names_are_unique_and_deps_resolve() {
        let names: HashSet<&str> = REGISTRY.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), REGISTRY.len());
        for p in REGISTRY {
            for d in p.deps {
                assert!(names.contains(d), "{}: unknown dep {d}", p.name);
                assert_ne!(*d, p.name, "{} depends on itself", p.name);
            }
        }
    }

    #[test]
    fn execute_fills_every_slot() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Pandora, 2, 120, 700, 1),
        ]);
        let ctx = AnalysisContext::new(&ds);
        for parallel in [false, true] {
            let obs = Obs::enabled();
            let partial = execute(&ctx, parallel, &obs);
            assert!(partial.protocols.is_some());
            assert!(partial.flagship_pair.is_some());
            assert!(partial.latency.is_some());
            let t = obs.finish(parallel);
            assert_eq!(t.spans_under("passes").count(), REGISTRY.len());
            // flagship_pair must run after collaborations (spans are
            // sorted by start time, so position order is run order).
            let pos = |n: &str| {
                t.spans
                    .iter()
                    .position(|s| s.path == format!("passes/{n}"))
                    .unwrap()
            };
            assert!(pos("flagship_pair") > pos("collaborations"));
            assert_eq!(
                t.metrics.counter("scheduler/stages"),
                Some(t.spans_under("scheduler").count() as u64)
            );
        }
    }

    #[test]
    fn disabled_observer_runs_identical_passes() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Pandora, 2, 120, 700, 1),
        ]);
        let ctx = AnalysisContext::new(&ds);
        let on = Obs::enabled();
        let off = Obs::disabled();
        let a = execute(&ctx, true, &on);
        let b = execute(&ctx, true, &off);
        assert_eq!(a.protocols, b.protocols);
        assert_eq!(a.flagship_pair, b.flagship_pair);
        assert!(off.finish(true).is_empty());
    }
}
