//! The one-call analysis pipeline: everything the paper reports, from
//! one dataset.
//!
//! [`AnalysisReport::run`] is a thin driver over the pass-based
//! pipeline: it builds the shared [`AnalysisContext`] once, executes the
//! [`crate::passes::REGISTRY`] through the dependency-aware scheduler
//! (in parallel by default), and assembles the report from the pass
//! outputs. [`AnalysisReport::run_baseline`] preserves the original
//! monolithic path — every analysis rescanning the dataset for itself —
//! as the reference for equivalence tests and the pipeline benchmark.
//!
//! Every run carries a [`RunTelemetry`]: hierarchical spans per build
//! stage and per pass, plus scheduler/kernel metrics, recorded through
//! [`ddos_obs::Obs`]. Telemetry is run metadata — `#[serde(skip)]` on
//! the report field — so its presence (or absence, see
//! [`PipelineOptions::telemetry`]) never changes report bytes.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

use ddos_obs::{Obs, RunTelemetry};
use ddos_schema::{Dataset, DatasetShard, Family, Seconds};
use ddos_stats::ArimaSpec;
use serde::{Deserialize, Serialize};

use crate::collab::concurrent::{CollabAnalysis, PairFocus};
use crate::collab::multistage::MultistageAnalysis;
use crate::columnar::worker_count;
use crate::context::AnalysisContext;
use crate::defense::{detection_latency_sweep, BlacklistSim, LatencyPoint};
use crate::epoch::{EpochContext, FoldScratch};
use crate::fault::{self, PipelineError};
use crate::kernels::KernelPolicy;
use crate::overview::activity::{activity_levels, FamilyActivity};
use crate::overview::daily::DailyDistribution;
use crate::overview::duration::DurationAnalysis;
use crate::overview::intervals::{self, ConcurrencyAnalysis, IntervalStats};
use crate::overview::protocols::{protocol_preferences, ProtocolFamilyRow, ProtocolPopularity};
use crate::passes::{self, CtxPart, PartialReport, LATENCY_GRID_S};
use crate::source::dispersion::{qualifying_families, FamilyDispersion};
use crate::source::prediction::PredictionAnalysis;
use crate::source::shift::ShiftAnalysis;
use crate::summary::SummaryComparison;
use crate::target::country::{all_profiles, overall_top_countries, FamilyCountryProfile};
use crate::target::recurrence::RecurrenceAnalysis;
use crate::util::BotIndex;

/// How to run the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// ARIMA order for the prediction pass.
    pub spec: ArimaSpec,
    /// Run the context build and independent passes on scoped threads.
    /// The serialized report is byte-identical either way; only
    /// wall-clock differs.
    pub parallel: bool,
    /// Record spans and metrics into [`AnalysisReport::telemetry`].
    /// Off means a no-op recorder ([`Obs::disabled`]) — the exact same
    /// code runs and the report bytes are identical (the conformance
    /// suite asserts this); only the telemetry artifact is empty.
    pub telemetry: bool,
    /// Which pass-body kernels to run: the chunked partial-merge
    /// kernels (`Auto`, the default; `Chunked` forces a chunk length)
    /// or the pre-kernel reference algorithms (`Reference`). Report
    /// bytes are identical for every policy — the golden suite and the
    /// kernel proptests pin this.
    pub kernels: KernelPolicy,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            spec: ArimaSpec::DEFAULT,
            parallel: true,
            telemetry: true,
            kernels: KernelPolicy::Auto,
        }
    }
}

/// Every analysis of the paper, computed over one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Fig. 1 — protocol popularity.
    pub protocols: ProtocolPopularity,
    /// Table II — per-family protocol preferences.
    pub protocol_rows: Vec<ProtocolFamilyRow>,
    /// Table III — workload summary vs the paper.
    pub summary: SummaryComparison,
    /// Fig. 2 — daily distribution.
    pub daily: DailyDistribution,
    /// §III-B — interval statistics per family (None where a family has
    /// fewer than two attacks).
    pub interval_stats: Vec<(Family, Option<IntervalStats>)>,
    /// §III-B — interval statistics across all attacks.
    pub all_interval_stats: Option<IntervalStats>,
    /// §III-B — concurrency classification (single- vs multi-family).
    pub concurrency: ConcurrencyAnalysis,
    /// §III-C / Figs. 6–7 — durations.
    pub durations: Option<DurationAnalysis>,
    /// Fig. 8 — weekly shift analysis.
    pub shifts: ShiftAnalysis,
    /// Fig. 9 — qualifying families' dispersion series.
    pub dispersion: Vec<FamilyDispersion>,
    /// Table IV / Figs. 12–13 — ARIMA prediction.
    pub prediction: PredictionAnalysis,
    /// Table V — country-level target profiles.
    pub target_countries: Vec<FamilyCountryProfile>,
    /// §IV-B — the overall top victim countries.
    pub overall_targets: Vec<(ddos_schema::CountryCode, usize)>,
    /// Table VI / Figs. 15–16 — concurrent collaborations.
    pub collaborations: CollabAnalysis,
    /// The Dirtjumper×Pandora deep dive (Fig. 16), when present.
    pub flagship_pair: Option<PairFocus>,
    /// §V-B / Figs. 17–18 — multistage chains.
    pub multistage: MultistageAnalysis,
    /// §III-A — per-family activity levels.
    pub activity: Vec<FamilyActivity>,
    /// Abstract finding 2 — next-attack start-time prediction.
    pub recurrence: RecurrenceAnalysis,
    /// §V summary — blacklist warm-up simulation.
    pub blacklist: BlacklistSim,
    /// §III-D — detection-latency sweep (1 min, 10 min, 1 h, 4 h, 1 day).
    pub latency: Vec<LatencyPoint>,
    /// Spans and metrics of the run (machine-dependent metadata —
    /// never serialized, so parallel and serial reports stay
    /// byte-identical). Empty when telemetry was off or the report
    /// came from [`AnalysisReport::run_baseline`].
    #[serde(skip)]
    pub telemetry: RunTelemetry,
}

impl AnalysisReport {
    /// Runs the full pipeline with the default ARIMA order.
    pub fn run(ds: &Dataset) -> AnalysisReport {
        Self::run_with(ds, ArimaSpec::DEFAULT)
    }

    /// Runs the full pipeline with a chosen ARIMA order.
    pub fn run_with(ds: &Dataset, spec: ArimaSpec) -> AnalysisReport {
        Self::run_opts(
            ds,
            PipelineOptions {
                spec,
                ..PipelineOptions::default()
            },
        )
    }

    /// Opens a binary trace file (`DDTL` v1 or v2 — memory-mapped, with
    /// framed v2 inputs decoded in parallel) and runs the full pipeline
    /// on it with default options.
    pub fn run_path(
        path: impl AsRef<std::path::Path>,
    ) -> Result<AnalysisReport, ddos_schema::SchemaError> {
        Ok(Self::run(&Dataset::open(path)?))
    }

    /// Runs the pass-based pipeline with explicit options. The
    /// `parallel` flag governs both the context build (chunked
    /// per-family fan-out over the columnar substrate) and the pass
    /// scheduler; the serialized report is identical either way.
    pub fn run_opts(ds: &Dataset, opts: PipelineOptions) -> AnalysisReport {
        fault::infallible(Self::try_run_opts(ds, opts))
    }

    /// Fallible [`AnalysisReport::run_opts`]: surfaces a
    /// `scheduler/pass` fault injection as `Err` instead of panicking.
    /// The pipeline holds no cross-run state, so retrying the same call
    /// without the fault plan reproduces the golden report.
    pub fn try_run_opts(
        ds: &Dataset,
        opts: PipelineOptions,
    ) -> Result<AnalysisReport, PipelineError> {
        let obs = if opts.telemetry {
            Obs::enabled()
        } else {
            Obs::disabled()
        };
        Self::try_run_obs(ds, opts, &obs)
    }

    /// Like [`AnalysisReport::run_opts`], but records into a
    /// caller-supplied [`Obs`]. Loaders use this to land their ingest
    /// telemetry (`ingest/frame_decode`, `ingest/bytes`, ...) in the
    /// same [`RunTelemetry`] as the analysis spans; `opts.telemetry` is
    /// ignored in favour of the recorder's own enabled state.
    pub fn run_obs(ds: &Dataset, opts: PipelineOptions, obs: &Obs) -> AnalysisReport {
        fault::infallible(Self::try_run_obs(ds, opts, obs))
    }

    /// Fallible [`AnalysisReport::run_obs`] — see
    /// [`AnalysisReport::try_run_opts`] for the error contract.
    pub fn try_run_obs(
        ds: &Dataset,
        opts: PipelineOptions,
        obs: &Obs,
    ) -> Result<AnalysisReport, PipelineError> {
        let ctx = {
            let _span = obs.span("context");
            AnalysisContext::build_kernels(ds, opts.spec, opts.parallel, opts.kernels, obs)
        };
        let partial = passes::try_execute(&ctx, opts.parallel, obs)?;
        let mut report = {
            let _span = obs.span("assemble");
            assemble(partial)
        };
        report.telemetry = obs.finish(opts.parallel);
        Ok(report)
    }

    /// Runs the pass scheduler over a context built elsewhere (the
    /// conformance suite uses this to feed the same passes a columnar
    /// and a reference-built context). No telemetry is recorded — the
    /// context build, where most of it lives, already happened.
    pub fn run_on(ctx: &AnalysisContext, parallel: bool) -> AnalysisReport {
        assemble(passes::execute(ctx, parallel, &Obs::disabled()))
    }

    /// Runs the pipeline through the epoch-sharded engine: the trace is
    /// sliced into `epoch_len` shards, each shard builds its own
    /// [`EpochContext`] (on scoped threads when `parallel`), and the
    /// contexts fold into one — which the merge laws guarantee is
    /// bit-identical to the monolithic [`AnalysisContext::build`]. The
    /// passes then run exactly as in [`AnalysisReport::run_opts`], so
    /// the serialized report is byte-identical to every other entry
    /// point (the golden-report suite pins this).
    pub fn run_epochs(ds: &Dataset, opts: PipelineOptions, epoch_len: Seconds) -> AnalysisReport {
        fault::infallible(Self::try_run_epochs(ds, opts, epoch_len))
    }

    /// Fallible [`AnalysisReport::run_epochs`]: the `epoch/merge`
    /// failpoint is consulted before every pairwise merge of the fold
    /// (and `scheduler/pass` before every pass), so an injected
    /// mid-fold abort surfaces as `Err` with all intermediate contexts
    /// dropped. Retrying rebuilds every shard from the dataset —
    /// nothing survives a failed fold — and reproduces the golden
    /// report.
    pub fn try_run_epochs(
        ds: &Dataset,
        opts: PipelineOptions,
        epoch_len: Seconds,
    ) -> Result<AnalysisReport, PipelineError> {
        let obs = if opts.telemetry {
            Obs::enabled()
        } else {
            Obs::disabled()
        };
        let shards = ds.shards(epoch_len);
        let built: Vec<EpochContext> = if opts.parallel && shards.len() > 1 {
            // Shard builds are independent: workers drain a shared
            // index and results re-sort into epoch order, so the fold
            // below is deterministic regardless of interleaving.
            let next = AtomicUsize::new(0);
            let next_ref = &next;
            let obs_ref = &obs;
            let shards_ref = &shards;
            let mut built: Vec<(usize, EpochContext)> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..worker_count().min(shards.len()))
                    .map(|_| {
                        scope.spawn(move |_| {
                            let mut out = Vec::new();
                            loop {
                                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                                if i >= shards_ref.len() {
                                    break;
                                }
                                out.push((i, EpochContext::build(&shards_ref[i], obs_ref)));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("epoch build panicked"))
                    .collect()
            })
            .expect("epoch build scope panicked");
            built.sort_unstable_by_key(|&(i, _)| i);
            built.into_iter().map(|(_, c)| c).collect()
        } else {
            shards
                .iter()
                .map(|s| EpochContext::build(s, &obs))
                .collect()
        };
        // Balanced pairwise fold: adjacent contexts merge level by
        // level (an odd leftover passes through untouched), so a span
        // of E epochs rewrites each attack's merged state O(log E)
        // times instead of the left fold's O(E). Every merge still
        // joins adjacent spans, and merge is associative (the epoch
        // equivalence suite proves it), so the result is bit-identical.
        // One `FoldScratch` serves every merge of the fold.
        let mut built = built;
        let mut scratch = FoldScratch::default();
        while built.len() > 1 {
            let mut next_level = Vec::with_capacity(built.len().div_ceil(2));
            let mut it = built.into_iter();
            while let Some(a) = it.next() {
                next_level.push(match it.next() {
                    Some(b) => {
                        fault::check(fault::EPOCH_MERGE, &obs)?;
                        let _span = obs.span("epoch/merge");
                        a.merge_scratch(b, &mut scratch).0
                    }
                    None => a,
                });
            }
            built = next_level;
        }
        let folded = built
            .into_iter()
            .next()
            .expect("a dataset always has at least one shard");
        let ctx = {
            let _span = obs.span("context");
            folded
                .into_context(ds, opts.spec)
                .with_kernels(opts.kernels)
        };
        let partial = passes::try_execute(&ctx, opts.parallel, &obs)?;
        let mut report = {
            let _span = obs.span("assemble");
            assemble(partial)
        };
        report.telemetry = obs.finish(opts.parallel);
        Ok(report)
    }

    /// Runs the pipeline by appending epochs one at a time through an
    /// [`IncrementalPipeline`] — the convenience wrapper over
    /// `IncrementalPipeline::new(..).into_report()`.
    pub fn run_incremental(
        ds: &Dataset,
        opts: PipelineOptions,
        epoch_len: Seconds,
    ) -> AnalysisReport {
        IncrementalPipeline::new(ds, opts, epoch_len).into_report()
    }

    /// Fallible [`AnalysisReport::run_incremental`] — see
    /// [`IncrementalPipeline::try_append_epoch`] for the per-append
    /// error contract.
    pub fn try_run_incremental(
        ds: &Dataset,
        opts: PipelineOptions,
        epoch_len: Seconds,
    ) -> Result<AnalysisReport, PipelineError> {
        IncrementalPipeline::new(ds, opts, epoch_len).try_into_report()
    }

    /// The pre-refactor monolithic pipeline: every analysis rescans the
    /// dataset for itself (the dispersion join runs twice, the shift
    /// join a third time, four analyses regroup the per-target index).
    /// Kept as the reference implementation — the equivalence tests
    /// assert the pass-based pipeline serializes identically, and the
    /// `repro --pipeline-bench` flag measures the speedup against it.
    pub fn run_baseline(ds: &Dataset, spec: ArimaSpec) -> AnalysisReport {
        let bots = BotIndex::build(ds);
        let collaborations = CollabAnalysis::compute(ds);
        let flagship_pair =
            PairFocus::compute(ds, &collaborations, Family::Dirtjumper, Family::Pandora);
        AnalysisReport {
            protocols: ProtocolPopularity::compute(ds),
            protocol_rows: protocol_preferences(ds),
            summary: SummaryComparison::compute(ds),
            daily: DailyDistribution::compute(ds),
            interval_stats: Family::ACTIVE
                .into_iter()
                .map(|f| {
                    let ivs = intervals::family_intervals(ds, f);
                    (f, IntervalStats::compute(&ivs))
                })
                .collect(),
            all_interval_stats: IntervalStats::compute(&intervals::all_intervals(ds)),
            concurrency: ConcurrencyAnalysis::compute(ds),
            durations: DurationAnalysis::compute(ds),
            shifts: ShiftAnalysis::compute(ds, &bots),
            dispersion: qualifying_families(ds, &bots),
            prediction: PredictionAnalysis::compute(ds, &bots, spec),
            target_countries: all_profiles(ds),
            overall_targets: overall_top_countries(ds, 5),
            collaborations,
            flagship_pair,
            multistage: MultistageAnalysis::compute(ds),
            activity: activity_levels(ds),
            recurrence: RecurrenceAnalysis::compute(ds, None),
            blacklist: BlacklistSim::run(ds),
            latency: detection_latency_sweep(ds, LATENCY_GRID_S),
            telemetry: RunTelemetry::default(),
        }
    }
}

/// What one [`IncrementalPipeline::append_epoch`] call did.
#[derive(Debug, Clone)]
pub struct AppendStats {
    /// Zero-based index of the epoch appended.
    pub epoch: usize,
    /// Attacks the epoch contributed.
    pub attacks: usize,
    /// Names of the passes re-run after this append, in registry
    /// order. Empty when the epoch changed nothing a pass reads (e.g.
    /// an epoch with no attacks and no new bots).
    pub reran: Vec<&'static str>,
}

/// The incremental pipeline: epochs append one at a time, and after
/// each append only the passes whose context inputs changed re-run.
///
/// Each append builds the epoch's [`EpochContext`], merges it into the
/// accumulator, maps the [`crate::epoch::MergeDelta`] to dirty
/// [`CtxPart`]s, and re-executes the dirtied passes
/// ([`passes::passes_dirtied_by`]) against the folded context; clean
/// sections keep their slots. After the last epoch the accumulator
/// covers the whole trace — the merge laws make it bit-identical to the
/// monolithic build — so [`IncrementalPipeline::into_report`] is
/// byte-identical to [`AnalysisReport::run_opts`].
///
/// Mid-stream caveat: passes read `ctx.dataset` for the raw records, so
/// between the first and last append a re-run pass sees the *full*
/// trace's records alongside the folded prefix's context. Intermediate
/// slots are therefore not exact prefix reports; only the final report
/// is pinned. Context-derived indices are always in range, so partial
/// materialization never panics.
pub struct IncrementalPipeline<'a> {
    ds: &'a Dataset,
    opts: PipelineOptions,
    obs: Obs,
    shards: Vec<DatasetShard<'a>>,
    next: usize,
    acc: Option<EpochContext>,
    partial: PartialReport,
    /// Passes dirtied by appended epochs but not yet successfully
    /// re-run. Normally drained within the same append; it only
    /// carries over when a `scheduler/pass` fault aborted the re-run,
    /// so the next append (or the final flush in
    /// [`IncrementalPipeline::try_into_report`]) retries them.
    pending: HashSet<&'static str>,
    /// Radix workspace and fix-up buffers, reused across appends so the
    /// steady-state append allocates no fresh sort scratch.
    scratch: FoldScratch,
}

impl<'a> IncrementalPipeline<'a> {
    /// Slices `ds` into `epoch_len` epochs and readies the pipeline.
    /// Nothing is computed until the first [`append_epoch`] call.
    ///
    /// [`append_epoch`]: IncrementalPipeline::append_epoch
    pub fn new(ds: &'a Dataset, opts: PipelineOptions, epoch_len: Seconds) -> Self {
        let obs = if opts.telemetry {
            Obs::enabled()
        } else {
            Obs::disabled()
        };
        IncrementalPipeline {
            ds,
            opts,
            obs,
            shards: ds.shards(epoch_len),
            next: 0,
            acc: None,
            partial: PartialReport::default(),
            pending: HashSet::new(),
            scratch: FoldScratch::default(),
        }
    }

    /// Total number of epochs in the slicing.
    pub fn epochs(&self) -> usize {
        self.shards.len()
    }

    /// Epochs appended so far.
    pub fn appended(&self) -> usize {
        self.next
    }

    /// Whether every epoch has been appended.
    pub fn is_complete(&self) -> bool {
        self.next == self.shards.len()
    }

    /// Appends the next epoch and re-runs the dirtied passes. Returns
    /// `None` once every epoch has been appended.
    pub fn append_epoch(&mut self) -> Option<AppendStats> {
        fault::infallible(self.try_append_epoch())
    }

    /// Fallible [`append_epoch`] with a two-level error contract:
    ///
    /// * An `epoch/merge` injection is checked **before any state is
    ///   consumed** — on `Err` the pipeline is untouched, and calling
    ///   `try_append_epoch` again retries the *same* epoch (the fault
    ///   suite pins that the in-place retry still reaches the golden
    ///   report).
    /// * A `scheduler/pass` injection aborts the pass re-run after the
    ///   epoch was merged; the dirtied passes stay queued in the
    ///   pending set and the next successful append (or the final
    ///   flush in [`try_into_report`]) re-runs them, so the pipeline
    ///   still converges to the golden report.
    ///
    /// [`append_epoch`]: IncrementalPipeline::append_epoch
    /// [`try_into_report`]: IncrementalPipeline::try_into_report
    pub fn try_append_epoch(&mut self) -> Result<Option<AppendStats>, PipelineError> {
        let epoch = self.next;
        let Some(shard) = self.shards.get(epoch) else {
            return Ok(None);
        };
        fault::check(fault::EPOCH_MERGE, &self.obs)?;
        self.next += 1;
        let built = EpochContext::build_scratch(shard, &self.obs, &mut self.scratch);
        let attacks = built.len();
        let mut parts: Vec<CtxPart> = Vec::new();
        let acc = match self.acc.take() {
            // The first epoch seeds every part: all slots must fill.
            None => {
                parts.extend([
                    CtxPart::Attacks,
                    CtxPart::Bots,
                    CtxPart::Durations,
                    CtxPart::Timelines,
                    CtxPart::Families,
                    CtxPart::Sources,
                ]);
                built
            }
            Some(prev) => {
                let (merged, delta) = {
                    let _span = self.obs.span("epoch/merge");
                    prev.merge_scratch(built, &mut self.scratch)
                };
                if delta.appended_attacks > 0 {
                    parts.extend([
                        CtxPart::Attacks,
                        CtxPart::Durations,
                        CtxPart::Timelines,
                        CtxPart::Families,
                        CtxPart::Sources,
                    ]);
                }
                if delta.appended_bots > 0 {
                    parts.push(CtxPart::Bots);
                }
                if !delta.reresolved.is_empty() {
                    // Re-resolution means bot attributes moved under
                    // resolved ids (arbitration) or extras promoted:
                    // the join, the family aggregates, and the bot
                    // roster views all changed.
                    parts.extend([CtxPart::Bots, CtxPart::Families, CtxPart::Sources]);
                }
                merged
            }
        };
        self.pending.extend(passes::passes_dirtied_by(&parts));
        let reran: Vec<&'static str> = passes::REGISTRY
            .iter()
            .map(|p| p.name)
            .filter(|n| self.pending.contains(n))
            .collect();
        // Commit the merged accumulator before the fallible pass
        // re-run: a pass fault then leaves a consistent context with
        // the un-run passes still queued in `pending`.
        self.acc = Some(acc);
        if !self.pending.is_empty() {
            let acc_ref = self.acc.as_ref().expect("accumulator just set");
            let ctx = {
                let _span = self.obs.span("epoch/materialize");
                acc_ref
                    .to_context(self.ds, self.opts.spec)
                    .with_kernels(self.opts.kernels)
            };
            passes::try_execute_filtered(
                &ctx,
                self.opts.parallel,
                &self.obs,
                &mut self.partial,
                &self.pending,
            )?;
            self.pending.clear();
        }
        Ok(Some(AppendStats {
            epoch,
            attacks,
            reran,
        }))
    }

    /// Appends any remaining epochs and assembles the final report —
    /// byte-identical to the batch pipeline's.
    pub fn into_report(self) -> AnalysisReport {
        fault::infallible(self.try_into_report())
    }

    /// Fallible [`into_report`]: drives the remaining appends through
    /// [`try_append_epoch`] and flushes any passes a previous faulted
    /// append left pending before assembling.
    ///
    /// [`into_report`]: IncrementalPipeline::into_report
    /// [`try_append_epoch`]: IncrementalPipeline::try_append_epoch
    pub fn try_into_report(mut self) -> Result<AnalysisReport, PipelineError> {
        while self.try_append_epoch()?.is_some() {}
        if !self.pending.is_empty() {
            let acc_ref = self
                .acc
                .as_ref()
                .expect("pending passes imply an appended epoch");
            let ctx = {
                let _span = self.obs.span("epoch/materialize");
                acc_ref
                    .to_context(self.ds, self.opts.spec)
                    .with_kernels(self.opts.kernels)
            };
            passes::try_execute_filtered(
                &ctx,
                self.opts.parallel,
                &self.obs,
                &mut self.partial,
                &self.pending,
            )?;
            self.pending.clear();
        }
        let mut report = {
            let _span = self.obs.span("assemble");
            assemble(self.partial)
        };
        report.telemetry = self.obs.finish(self.opts.parallel);
        Ok(report)
    }
}

/// Assembles the report from a completed pass run. Panics if a slot was
/// never filled — the registry test guards against that.
fn assemble(partial: PartialReport) -> AnalysisReport {
    macro_rules! take {
        ($field:ident) => {
            partial
                .$field
                .expect(concat!("pass left report slot empty: ", stringify!($field)))
        };
    }
    AnalysisReport {
        protocols: take!(protocols),
        protocol_rows: take!(protocol_rows),
        summary: take!(summary),
        daily: take!(daily),
        interval_stats: take!(interval_stats),
        all_interval_stats: take!(all_interval_stats),
        concurrency: take!(concurrency),
        durations: take!(durations),
        shifts: take!(shifts),
        dispersion: take!(dispersion),
        prediction: take!(prediction),
        target_countries: take!(target_countries),
        overall_targets: take!(overall_targets),
        collaborations: take!(collaborations),
        flagship_pair: take!(flagship_pair),
        multistage: take!(multistage),
        activity: take!(activity),
        recurrence: take!(recurrence),
        blacklist: take!(blacklist),
        latency: take!(latency),
        telemetry: RunTelemetry::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    #[test]
    fn report_runs_on_a_tiny_dataset() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Pandora, 2, 120, 700, 1),
            attack(Family::Dirtjumper, 3, 5_000, 900, 2),
        ]);
        let r = AnalysisReport::run(&ds);
        assert_eq!(r.summary.measured.attacks, 3);
        assert_eq!(r.protocols.counts[0].1, 3);
        assert_eq!(r.daily.counts[0], 3);
        assert_eq!(r.collaborations.pairs.len(), 1);
        assert!(r.flagship_pair.is_some());
        assert!(r.durations.is_some());
        // Only families with ≥2 attacks have interval stats.
        let dj = r
            .interval_stats
            .iter()
            .find(|&&(f, _)| f == Family::Dirtjumper)
            .unwrap();
        assert!(dj.1.is_some());
        let nitol = r
            .interval_stats
            .iter()
            .find(|&&(f, _)| f == Family::Nitol)
            .unwrap();
        assert!(nitol.1.is_none());
        // The run carries its telemetry: one span per pass, the build
        // stages under `context/`, and scheduler metrics.
        assert_eq!(
            r.telemetry.spans_under("passes").count(),
            passes::REGISTRY.len()
        );
        assert!(r.telemetry.span("context").is_some());
        assert!(r.telemetry.span("context/bot_table").is_some());
        assert!(r.telemetry.span("assemble").is_some());
        assert!(r.telemetry.parallel);
        assert!(r.telemetry.metrics.counter("scheduler/stages").unwrap() > 0);
    }

    #[test]
    fn report_runs_on_an_empty_dataset() {
        let ds = dataset(vec![]);
        let r = AnalysisReport::run(&ds);
        assert!(r.durations.is_none());
        assert!(r.recurrence.trains.is_empty());
        assert!(r.blacklist.hits.is_empty());
        assert_eq!(r.latency.len(), 5);
        assert!(r.all_interval_stats.is_none());
        assert!(r.flagship_pair.is_none());
        assert!(r.dispersion.is_empty());
        assert!(r.prediction.rows.is_empty());
        assert!(r.multistage.chains.is_empty());
    }

    #[test]
    fn parallel_serial_and_baseline_agree_on_a_tiny_dataset() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Dirtjumper, 2, 100, 650, 1),
            attack(Family::Pandora, 3, 120, 700, 1),
            attack(Family::Pandora, 4, 760, 60, 1),
            attack(Family::Pandora, 5, 1_500, 60, 1),
            attack(Family::Pandora, 6, 2_400, 60, 1),
            attack(Family::Dirtjumper, 7, 5_000, 900, 2),
        ]);
        let parallel = AnalysisReport::run_opts(&ds, PipelineOptions::default());
        let serial = AnalysisReport::run_opts(
            &ds,
            PipelineOptions {
                parallel: false,
                ..PipelineOptions::default()
            },
        );
        let baseline = AnalysisReport::run_baseline(&ds, ArimaSpec::DEFAULT);
        let quiet = AnalysisReport::run_opts(
            &ds,
            PipelineOptions {
                telemetry: false,
                ..PipelineOptions::default()
            },
        );
        let json = |r: &AnalysisReport| serde_json::to_string(r).unwrap();
        assert_eq!(json(&parallel), json(&serial));
        assert_eq!(json(&parallel), json(&baseline));
        // Telemetry is metadata: excluded from serialization, and
        // turning it off changes nothing but the attached artifact.
        assert_eq!(json(&parallel), json(&quiet));
        assert!(!json(&parallel).contains("telemetry"));
        assert!(!serial.telemetry.parallel);
        assert!(quiet.telemetry.is_empty());
        assert!(baseline.telemetry.is_empty());
    }
}
