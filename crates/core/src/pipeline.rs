//! The one-call analysis pipeline: everything the paper reports, from
//! one dataset.
//!
//! [`AnalysisReport::run`] is a thin driver over the pass-based
//! pipeline: it builds the shared [`AnalysisContext`] once, executes the
//! [`crate::passes::REGISTRY`] through the dependency-aware scheduler
//! (in parallel by default), and assembles the report from the pass
//! outputs. [`AnalysisReport::run_baseline`] preserves the original
//! monolithic path — every analysis rescanning the dataset for itself —
//! as the reference for equivalence tests and the pipeline benchmark.
//!
//! Every run carries a [`RunTelemetry`]: hierarchical spans per build
//! stage and per pass, plus scheduler/kernel metrics, recorded through
//! [`ddos_obs::Obs`]. Telemetry is run metadata — `#[serde(skip)]` on
//! the report field — so its presence (or absence, see
//! [`PipelineOptions::telemetry`]) never changes report bytes.

use ddos_obs::{Obs, RunTelemetry};
use ddos_schema::{Dataset, Family};
use ddos_stats::ArimaSpec;
use serde::{Deserialize, Serialize};

use crate::collab::concurrent::{CollabAnalysis, PairFocus};
use crate::collab::multistage::MultistageAnalysis;
use crate::context::AnalysisContext;
use crate::defense::{detection_latency_sweep, BlacklistSim, LatencyPoint};
use crate::overview::activity::{activity_levels, FamilyActivity};
use crate::overview::daily::DailyDistribution;
use crate::overview::duration::DurationAnalysis;
use crate::overview::intervals::{self, ConcurrencyAnalysis, IntervalStats};
use crate::overview::protocols::{protocol_preferences, ProtocolFamilyRow, ProtocolPopularity};
use crate::passes::{self, PartialReport, LATENCY_GRID_S};
use crate::source::dispersion::{qualifying_families, FamilyDispersion};
use crate::source::prediction::PredictionAnalysis;
use crate::source::shift::ShiftAnalysis;
use crate::summary::SummaryComparison;
use crate::target::country::{all_profiles, overall_top_countries, FamilyCountryProfile};
use crate::target::recurrence::RecurrenceAnalysis;
use crate::util::BotIndex;

/// How to run the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// ARIMA order for the prediction pass.
    pub spec: ArimaSpec,
    /// Run the context build and independent passes on scoped threads.
    /// The serialized report is byte-identical either way; only
    /// wall-clock differs.
    pub parallel: bool,
    /// Record spans and metrics into [`AnalysisReport::telemetry`].
    /// Off means a no-op recorder ([`Obs::disabled`]) — the exact same
    /// code runs and the report bytes are identical (the conformance
    /// suite asserts this); only the telemetry artifact is empty.
    pub telemetry: bool,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            spec: ArimaSpec::DEFAULT,
            parallel: true,
            telemetry: true,
        }
    }
}

/// Every analysis of the paper, computed over one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Fig. 1 — protocol popularity.
    pub protocols: ProtocolPopularity,
    /// Table II — per-family protocol preferences.
    pub protocol_rows: Vec<ProtocolFamilyRow>,
    /// Table III — workload summary vs the paper.
    pub summary: SummaryComparison,
    /// Fig. 2 — daily distribution.
    pub daily: DailyDistribution,
    /// §III-B — interval statistics per family (None where a family has
    /// fewer than two attacks).
    pub interval_stats: Vec<(Family, Option<IntervalStats>)>,
    /// §III-B — interval statistics across all attacks.
    pub all_interval_stats: Option<IntervalStats>,
    /// §III-B — concurrency classification (single- vs multi-family).
    pub concurrency: ConcurrencyAnalysis,
    /// §III-C / Figs. 6–7 — durations.
    pub durations: Option<DurationAnalysis>,
    /// Fig. 8 — weekly shift analysis.
    pub shifts: ShiftAnalysis,
    /// Fig. 9 — qualifying families' dispersion series.
    pub dispersion: Vec<FamilyDispersion>,
    /// Table IV / Figs. 12–13 — ARIMA prediction.
    pub prediction: PredictionAnalysis,
    /// Table V — country-level target profiles.
    pub target_countries: Vec<FamilyCountryProfile>,
    /// §IV-B — the overall top victim countries.
    pub overall_targets: Vec<(ddos_schema::CountryCode, usize)>,
    /// Table VI / Figs. 15–16 — concurrent collaborations.
    pub collaborations: CollabAnalysis,
    /// The Dirtjumper×Pandora deep dive (Fig. 16), when present.
    pub flagship_pair: Option<PairFocus>,
    /// §V-B / Figs. 17–18 — multistage chains.
    pub multistage: MultistageAnalysis,
    /// §III-A — per-family activity levels.
    pub activity: Vec<FamilyActivity>,
    /// Abstract finding 2 — next-attack start-time prediction.
    pub recurrence: RecurrenceAnalysis,
    /// §V summary — blacklist warm-up simulation.
    pub blacklist: BlacklistSim,
    /// §III-D — detection-latency sweep (1 min, 10 min, 1 h, 4 h, 1 day).
    pub latency: Vec<LatencyPoint>,
    /// Spans and metrics of the run (machine-dependent metadata —
    /// never serialized, so parallel and serial reports stay
    /// byte-identical). Empty when telemetry was off or the report
    /// came from [`AnalysisReport::run_baseline`].
    #[serde(skip)]
    pub telemetry: RunTelemetry,
}

impl AnalysisReport {
    /// Runs the full pipeline with the default ARIMA order.
    pub fn run(ds: &Dataset) -> AnalysisReport {
        Self::run_with(ds, ArimaSpec::DEFAULT)
    }

    /// Runs the full pipeline with a chosen ARIMA order.
    pub fn run_with(ds: &Dataset, spec: ArimaSpec) -> AnalysisReport {
        Self::run_opts(
            ds,
            PipelineOptions {
                spec,
                ..PipelineOptions::default()
            },
        )
    }

    /// Runs the pass-based pipeline with explicit options. The
    /// `parallel` flag governs both the context build (chunked
    /// per-family fan-out over the columnar substrate) and the pass
    /// scheduler; the serialized report is identical either way.
    pub fn run_opts(ds: &Dataset, opts: PipelineOptions) -> AnalysisReport {
        let obs = if opts.telemetry {
            Obs::enabled()
        } else {
            Obs::disabled()
        };
        let ctx = {
            let _span = obs.span("context");
            AnalysisContext::build_obs(ds, opts.spec, opts.parallel, &obs)
        };
        let partial = passes::execute(&ctx, opts.parallel, &obs);
        let mut report = {
            let _span = obs.span("assemble");
            assemble(partial)
        };
        report.telemetry = obs.finish(opts.parallel);
        report
    }

    /// Runs the pass scheduler over a context built elsewhere (the
    /// conformance suite uses this to feed the same passes a columnar
    /// and a reference-built context). No telemetry is recorded — the
    /// context build, where most of it lives, already happened.
    pub fn run_on(ctx: &AnalysisContext, parallel: bool) -> AnalysisReport {
        assemble(passes::execute(ctx, parallel, &Obs::disabled()))
    }

    /// The pre-refactor monolithic pipeline: every analysis rescans the
    /// dataset for itself (the dispersion join runs twice, the shift
    /// join a third time, four analyses regroup the per-target index).
    /// Kept as the reference implementation — the equivalence tests
    /// assert the pass-based pipeline serializes identically, and the
    /// `repro --pipeline-bench` flag measures the speedup against it.
    pub fn run_baseline(ds: &Dataset, spec: ArimaSpec) -> AnalysisReport {
        let bots = BotIndex::build(ds);
        let collaborations = CollabAnalysis::compute(ds);
        let flagship_pair =
            PairFocus::compute(ds, &collaborations, Family::Dirtjumper, Family::Pandora);
        AnalysisReport {
            protocols: ProtocolPopularity::compute(ds),
            protocol_rows: protocol_preferences(ds),
            summary: SummaryComparison::compute(ds),
            daily: DailyDistribution::compute(ds),
            interval_stats: Family::ACTIVE
                .into_iter()
                .map(|f| {
                    let ivs = intervals::family_intervals(ds, f);
                    (f, IntervalStats::compute(&ivs))
                })
                .collect(),
            all_interval_stats: IntervalStats::compute(&intervals::all_intervals(ds)),
            concurrency: ConcurrencyAnalysis::compute(ds),
            durations: DurationAnalysis::compute(ds),
            shifts: ShiftAnalysis::compute(ds, &bots),
            dispersion: qualifying_families(ds, &bots),
            prediction: PredictionAnalysis::compute(ds, &bots, spec),
            target_countries: all_profiles(ds),
            overall_targets: overall_top_countries(ds, 5),
            collaborations,
            flagship_pair,
            multistage: MultistageAnalysis::compute(ds),
            activity: activity_levels(ds),
            recurrence: RecurrenceAnalysis::compute(ds, None),
            blacklist: BlacklistSim::run(ds),
            latency: detection_latency_sweep(ds, LATENCY_GRID_S),
            telemetry: RunTelemetry::default(),
        }
    }
}

/// Assembles the report from a completed pass run. Panics if a slot was
/// never filled — the registry test guards against that.
fn assemble(partial: PartialReport) -> AnalysisReport {
    macro_rules! take {
        ($field:ident) => {
            partial
                .$field
                .expect(concat!("pass left report slot empty: ", stringify!($field)))
        };
    }
    AnalysisReport {
        protocols: take!(protocols),
        protocol_rows: take!(protocol_rows),
        summary: take!(summary),
        daily: take!(daily),
        interval_stats: take!(interval_stats),
        all_interval_stats: take!(all_interval_stats),
        concurrency: take!(concurrency),
        durations: take!(durations),
        shifts: take!(shifts),
        dispersion: take!(dispersion),
        prediction: take!(prediction),
        target_countries: take!(target_countries),
        overall_targets: take!(overall_targets),
        collaborations: take!(collaborations),
        flagship_pair: take!(flagship_pair),
        multistage: take!(multistage),
        activity: take!(activity),
        recurrence: take!(recurrence),
        blacklist: take!(blacklist),
        latency: take!(latency),
        telemetry: RunTelemetry::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    #[test]
    fn report_runs_on_a_tiny_dataset() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Pandora, 2, 120, 700, 1),
            attack(Family::Dirtjumper, 3, 5_000, 900, 2),
        ]);
        let r = AnalysisReport::run(&ds);
        assert_eq!(r.summary.measured.attacks, 3);
        assert_eq!(r.protocols.counts[0].1, 3);
        assert_eq!(r.daily.counts[0], 3);
        assert_eq!(r.collaborations.pairs.len(), 1);
        assert!(r.flagship_pair.is_some());
        assert!(r.durations.is_some());
        // Only families with ≥2 attacks have interval stats.
        let dj = r
            .interval_stats
            .iter()
            .find(|&&(f, _)| f == Family::Dirtjumper)
            .unwrap();
        assert!(dj.1.is_some());
        let nitol = r
            .interval_stats
            .iter()
            .find(|&&(f, _)| f == Family::Nitol)
            .unwrap();
        assert!(nitol.1.is_none());
        // The run carries its telemetry: one span per pass, the build
        // stages under `context/`, and scheduler metrics.
        assert_eq!(
            r.telemetry.spans_under("passes").count(),
            passes::REGISTRY.len()
        );
        assert!(r.telemetry.span("context").is_some());
        assert!(r.telemetry.span("context/bot_table").is_some());
        assert!(r.telemetry.span("assemble").is_some());
        assert!(r.telemetry.parallel);
        assert!(r.telemetry.metrics.counter("scheduler/stages").unwrap() > 0);
    }

    #[test]
    fn report_runs_on_an_empty_dataset() {
        let ds = dataset(vec![]);
        let r = AnalysisReport::run(&ds);
        assert!(r.durations.is_none());
        assert!(r.recurrence.trains.is_empty());
        assert!(r.blacklist.hits.is_empty());
        assert_eq!(r.latency.len(), 5);
        assert!(r.all_interval_stats.is_none());
        assert!(r.flagship_pair.is_none());
        assert!(r.dispersion.is_empty());
        assert!(r.prediction.rows.is_empty());
        assert!(r.multistage.chains.is_empty());
    }

    #[test]
    fn parallel_serial_and_baseline_agree_on_a_tiny_dataset() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Dirtjumper, 2, 100, 650, 1),
            attack(Family::Pandora, 3, 120, 700, 1),
            attack(Family::Pandora, 4, 760, 60, 1),
            attack(Family::Pandora, 5, 1_500, 60, 1),
            attack(Family::Pandora, 6, 2_400, 60, 1),
            attack(Family::Dirtjumper, 7, 5_000, 900, 2),
        ]);
        let parallel = AnalysisReport::run_opts(&ds, PipelineOptions::default());
        let serial = AnalysisReport::run_opts(
            &ds,
            PipelineOptions {
                parallel: false,
                ..PipelineOptions::default()
            },
        );
        let baseline = AnalysisReport::run_baseline(&ds, ArimaSpec::DEFAULT);
        let quiet = AnalysisReport::run_opts(
            &ds,
            PipelineOptions {
                telemetry: false,
                ..PipelineOptions::default()
            },
        );
        let json = |r: &AnalysisReport| serde_json::to_string(r).unwrap();
        assert_eq!(json(&parallel), json(&serial));
        assert_eq!(json(&parallel), json(&baseline));
        // Telemetry is metadata: excluded from serialization, and
        // turning it off changes nothing but the attached artifact.
        assert_eq!(json(&parallel), json(&quiet));
        assert!(!json(&parallel).contains("telemetry"));
        assert!(!serial.telemetry.parallel);
        assert!(quiet.telemetry.is_empty());
        assert!(baseline.telemetry.is_empty());
    }
}
