//! The one-call analysis pipeline: everything the paper reports, from
//! one dataset.
//!
//! [`AnalysisReport::run`] is a thin driver over the pass-based
//! pipeline: it builds the shared [`AnalysisContext`] once, executes the
//! [`crate::passes::REGISTRY`] through the dependency-aware scheduler
//! (in parallel by default), and assembles the report from the pass
//! outputs. [`AnalysisReport::run_baseline`] preserves the original
//! monolithic path — every analysis rescanning the dataset for itself —
//! as the reference for equivalence tests and the pipeline benchmark.
//!
//! Every run carries a [`RunTelemetry`]: hierarchical spans per build
//! stage and per pass, plus scheduler/kernel metrics, recorded through
//! [`ddos_obs::Obs`]. Telemetry is run metadata — `#[serde(skip)]` on
//! the report field — so its presence (or absence, see
//! [`PipelineOptions::telemetry`]) never changes report bytes.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

use ddos_obs::{Obs, RunTelemetry};
use ddos_schema::{Dataset, DatasetShard, Family, Seconds};
use ddos_stats::ArimaSpec;
use serde::{Deserialize, Serialize};

use crate::analysis::Analysis;
use crate::collab::concurrent::{CollabAnalysis, PairFocus};
use crate::collab::multistage::MultistageAnalysis;
use crate::columnar::worker_count;
use crate::context::AnalysisContext;
use crate::defense::{detection_latency_sweep, BlacklistSim, LatencyPoint};
use crate::epoch::{EpochContext, FoldScratch};
use crate::fault::{self, PipelineError};
use crate::kernels::KernelPolicy;
use crate::overview::activity::{activity_levels, FamilyActivity};
use crate::overview::daily::DailyDistribution;
use crate::overview::duration::DurationAnalysis;
use crate::overview::intervals::{self, ConcurrencyAnalysis, IntervalStats};
use crate::overview::protocols::{protocol_preferences, ProtocolFamilyRow, ProtocolPopularity};
use crate::passes::{self, CtxPart, PartialReport, LATENCY_GRID_S};
use crate::source::dispersion::{qualifying_families, FamilyDispersion};
use crate::source::prediction::PredictionAnalysis;
use crate::source::shift::ShiftAnalysis;
use crate::summary::SummaryComparison;
use crate::target::country::{all_profiles, overall_top_countries, FamilyCountryProfile};
use crate::target::recurrence::RecurrenceAnalysis;
use crate::util::BotIndex;

/// How to run the pipeline.
///
/// Non-exhaustive so future flags don't break downstream construction:
/// build one with [`PipelineOptions::new`] (or `default()`) and the
/// builder-style setters, e.g.
/// `PipelineOptions::new().parallel(false).kernels(KernelPolicy::Reference)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct PipelineOptions {
    /// ARIMA order for the prediction pass.
    pub spec: ArimaSpec,
    /// Run the context build and independent passes on scoped threads.
    /// The serialized report is byte-identical either way; only
    /// wall-clock differs.
    pub parallel: bool,
    /// Record spans and metrics into [`AnalysisReport::telemetry`].
    /// Off means a no-op recorder ([`Obs::disabled`]) — the exact same
    /// code runs and the report bytes are identical (the conformance
    /// suite asserts this); only the telemetry artifact is empty.
    pub telemetry: bool,
    /// Which pass-body kernels to run: the chunked partial-merge
    /// kernels (`Auto`, the default; `Chunked` forces a chunk length)
    /// or the pre-kernel reference algorithms (`Reference`). Report
    /// bytes are identical for every policy — the golden suite and the
    /// kernel proptests pin this.
    pub kernels: KernelPolicy,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            spec: ArimaSpec::DEFAULT,
            parallel: true,
            telemetry: true,
            kernels: KernelPolicy::Auto,
        }
    }
}

impl PipelineOptions {
    /// The default options (parallel, telemetry on, `Auto` kernels,
    /// default ARIMA order) — the starting point for the setters below.
    pub fn new() -> PipelineOptions {
        PipelineOptions::default()
    }

    /// Sets the ARIMA order for the prediction pass.
    pub fn spec(mut self, spec: ArimaSpec) -> PipelineOptions {
        self.spec = spec;
        self
    }

    /// Sets whether the context build and pass scheduler fan out on
    /// scoped threads.
    pub fn parallel(mut self, parallel: bool) -> PipelineOptions {
        self.parallel = parallel;
        self
    }

    /// Sets whether spans and metrics are recorded into
    /// [`AnalysisReport::telemetry`].
    pub fn telemetry(mut self, telemetry: bool) -> PipelineOptions {
        self.telemetry = telemetry;
        self
    }

    /// Sets the kernel policy for the pass bodies.
    pub fn kernels(mut self, kernels: KernelPolicy) -> PipelineOptions {
        self.kernels = kernels;
        self
    }
}

/// Every analysis of the paper, computed over one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Fig. 1 — protocol popularity.
    pub protocols: ProtocolPopularity,
    /// Table II — per-family protocol preferences.
    pub protocol_rows: Vec<ProtocolFamilyRow>,
    /// Table III — workload summary vs the paper.
    pub summary: SummaryComparison,
    /// Fig. 2 — daily distribution.
    pub daily: DailyDistribution,
    /// §III-B — interval statistics per family (None where a family has
    /// fewer than two attacks).
    pub interval_stats: Vec<(Family, Option<IntervalStats>)>,
    /// §III-B — interval statistics across all attacks.
    pub all_interval_stats: Option<IntervalStats>,
    /// §III-B — concurrency classification (single- vs multi-family).
    pub concurrency: ConcurrencyAnalysis,
    /// §III-C / Figs. 6–7 — durations.
    pub durations: Option<DurationAnalysis>,
    /// Fig. 8 — weekly shift analysis.
    pub shifts: ShiftAnalysis,
    /// Fig. 9 — qualifying families' dispersion series.
    pub dispersion: Vec<FamilyDispersion>,
    /// Table IV / Figs. 12–13 — ARIMA prediction.
    pub prediction: PredictionAnalysis,
    /// Table V — country-level target profiles.
    pub target_countries: Vec<FamilyCountryProfile>,
    /// §IV-B — the overall top victim countries.
    pub overall_targets: Vec<(ddos_schema::CountryCode, usize)>,
    /// Table VI / Figs. 15–16 — concurrent collaborations.
    pub collaborations: CollabAnalysis,
    /// The Dirtjumper×Pandora deep dive (Fig. 16), when present.
    pub flagship_pair: Option<PairFocus>,
    /// §V-B / Figs. 17–18 — multistage chains.
    pub multistage: MultistageAnalysis,
    /// §III-A — per-family activity levels.
    pub activity: Vec<FamilyActivity>,
    /// Abstract finding 2 — next-attack start-time prediction.
    pub recurrence: RecurrenceAnalysis,
    /// §V summary — blacklist warm-up simulation.
    pub blacklist: BlacklistSim,
    /// §III-D — detection-latency sweep (1 min, 10 min, 1 h, 4 h, 1 day).
    pub latency: Vec<LatencyPoint>,
    /// Spans and metrics of the run (machine-dependent metadata —
    /// never serialized, so parallel and serial reports stay
    /// byte-identical). Empty when telemetry was off or the report
    /// came from [`AnalysisReport::run_baseline`].
    #[serde(skip)]
    pub telemetry: RunTelemetry,
}

/// The monolithic engine: one context build, one pass-scheduler run,
/// recording into `obs`. The body behind `Analysis::try_run` (batch
/// mode) and the legacy `run_opts`/`run_obs` shims.
pub(crate) fn run_monolithic(
    ds: &Dataset,
    opts: PipelineOptions,
    obs: &Obs,
) -> Result<AnalysisReport, PipelineError> {
    let ctx = {
        let _span = obs.span("context");
        AnalysisContext::build_kernels(ds, opts.spec, opts.parallel, opts.kernels, obs)
    };
    let partial = passes::try_execute(&ctx, opts.parallel, obs)?;
    let mut report = {
        let _span = obs.span("assemble");
        assemble(partial)
    };
    report.telemetry = obs.finish(opts.parallel);
    Ok(report)
}

/// Runs the pass scheduler over a context built elsewhere, recording
/// into `obs`. The body behind `Analysis::over(..).try_run()` and the
/// legacy `run_on` shim.
pub(crate) fn run_over(
    ctx: &AnalysisContext,
    parallel: bool,
    obs: &Obs,
) -> Result<AnalysisReport, PipelineError> {
    let partial = passes::try_execute(ctx, parallel, obs)?;
    let mut report = assemble(partial);
    report.telemetry = obs.finish(parallel);
    Ok(report)
}

/// The epoch-sharded engine: the trace is sliced into `epoch_len`
/// shards, each shard builds its own [`EpochContext`] (on scoped
/// threads when `opts.parallel`), and the contexts fold pairwise into
/// one — which the merge laws guarantee is bit-identical to the
/// monolithic [`AnalysisContext::build`]. The body behind
/// `Analysis::epochs(..).try_run()` and the legacy `run_epochs` shims.
pub(crate) fn run_folded(
    ds: &Dataset,
    opts: PipelineOptions,
    epoch_len: Seconds,
    obs: &Obs,
) -> Result<AnalysisReport, PipelineError> {
    let shards = ds.shards(epoch_len);
    let built: Vec<EpochContext> = if opts.parallel && shards.len() > 1 {
        // Shard builds are independent: workers drain a shared
        // index and results re-sort into epoch order, so the fold
        // below is deterministic regardless of interleaving.
        let next = AtomicUsize::new(0);
        let next_ref = &next;
        let obs_ref = obs;
        let shards_ref = &shards;
        let mut built: Vec<(usize, EpochContext)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..worker_count().min(shards.len()))
                .map(|_| {
                    scope.spawn(move |_| {
                        let mut out = Vec::new();
                        loop {
                            let i = next_ref.fetch_add(1, Ordering::Relaxed);
                            if i >= shards_ref.len() {
                                break;
                            }
                            out.push((i, EpochContext::build(&shards_ref[i], obs_ref)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("epoch build panicked"))
                .collect()
        })
        .expect("epoch build scope panicked");
        built.sort_unstable_by_key(|&(i, _)| i);
        built.into_iter().map(|(_, c)| c).collect()
    } else {
        shards.iter().map(|s| EpochContext::build(s, obs)).collect()
    };
    // Balanced pairwise fold: adjacent contexts merge level by
    // level (an odd leftover passes through untouched), so a span
    // of E epochs rewrites each attack's merged state O(log E)
    // times instead of the left fold's O(E). Every merge still
    // joins adjacent spans, and merge is associative (the epoch
    // equivalence suite proves it), so the result is bit-identical.
    // One `FoldScratch` serves every merge of the fold.
    let mut built = built;
    let mut scratch = FoldScratch::default();
    while built.len() > 1 {
        let mut next_level = Vec::with_capacity(built.len().div_ceil(2));
        let mut it = built.into_iter();
        while let Some(a) = it.next() {
            next_level.push(match it.next() {
                Some(b) => {
                    fault::check(fault::EPOCH_MERGE, obs)?;
                    let _span = obs.span("epoch/merge");
                    a.merge_scratch(b, &mut scratch).0
                }
                None => a,
            });
        }
        built = next_level;
    }
    let folded = built
        .into_iter()
        .next()
        .expect("a dataset always has at least one shard");
    let ctx = {
        let _span = obs.span("context");
        folded
            .into_context(ds, opts.spec)
            .with_kernels(opts.kernels)
    };
    let partial = passes::try_execute(&ctx, opts.parallel, obs)?;
    let mut report = {
        let _span = obs.span("assemble");
        assemble(partial)
    };
    report.telemetry = obs.finish(opts.parallel);
    Ok(report)
}

/// The pre-refactor monolithic pipeline: every analysis rescans the
/// dataset for itself (the dispersion join runs twice, the shift join a
/// third time, four analyses regroup the per-target index). Kept as the
/// reference implementation — the equivalence tests assert the
/// pass-based pipeline serializes identically, and the
/// `repro --pipeline-bench` flag measures the speedup against it. The
/// body behind `Analysis::baseline()` and the legacy `run_baseline`
/// shim.
pub(crate) fn baseline_report(ds: &Dataset, spec: ArimaSpec) -> AnalysisReport {
    let bots = BotIndex::build(ds);
    let collaborations = CollabAnalysis::compute(ds);
    let flagship_pair =
        PairFocus::compute(ds, &collaborations, Family::Dirtjumper, Family::Pandora);
    AnalysisReport {
        protocols: ProtocolPopularity::compute(ds),
        protocol_rows: protocol_preferences(ds),
        summary: SummaryComparison::compute(ds),
        daily: DailyDistribution::compute(ds),
        interval_stats: Family::ACTIVE
            .into_iter()
            .map(|f| {
                let ivs = intervals::family_intervals(ds, f);
                (f, IntervalStats::compute(&ivs))
            })
            .collect(),
        all_interval_stats: IntervalStats::compute(&intervals::all_intervals(ds)),
        concurrency: ConcurrencyAnalysis::compute(ds),
        durations: DurationAnalysis::compute(ds),
        shifts: ShiftAnalysis::compute(ds, &bots),
        dispersion: qualifying_families(ds, &bots),
        prediction: PredictionAnalysis::compute(ds, &bots, spec),
        target_countries: all_profiles(ds),
        overall_targets: overall_top_countries(ds, 5),
        collaborations,
        flagship_pair,
        multistage: MultistageAnalysis::compute(ds),
        activity: activity_levels(ds),
        recurrence: RecurrenceAnalysis::compute(ds, None),
        blacklist: BlacklistSim::run(ds),
        latency: detection_latency_sweep(ds, LATENCY_GRID_S),
        telemetry: RunTelemetry::default(),
    }
}

impl AnalysisReport {
    /// Runs the full pipeline with the default options — shorthand for
    /// [`Analysis::new`]`(ds).run()`.
    pub fn run(ds: &Dataset) -> AnalysisReport {
        Analysis::new(ds).run()
    }

    /// Runs the full pipeline with a chosen ARIMA order.
    #[deprecated(note = "use the `Analysis` builder: `Analysis::new(ds).spec(spec).run()`")]
    pub fn run_with(ds: &Dataset, spec: ArimaSpec) -> AnalysisReport {
        Analysis::new(ds).spec(spec).run()
    }

    /// Opens a binary trace file (`DDTL` v1 or v2 — memory-mapped, with
    /// framed v2 inputs decoded in parallel) and runs the full pipeline
    /// on it with default options.
    #[deprecated(note = "open the trace with `Dataset::open` and run `Analysis::new(&ds).run()`")]
    pub fn run_path(
        path: impl AsRef<std::path::Path>,
    ) -> Result<AnalysisReport, ddos_schema::SchemaError> {
        Ok(Analysis::new(&Dataset::open(path)?).run())
    }

    /// Runs the pass-based pipeline with explicit options. The
    /// `parallel` flag governs both the context build (chunked
    /// per-family fan-out over the columnar substrate) and the pass
    /// scheduler; the serialized report is identical either way.
    #[deprecated(note = "use the `Analysis` builder: `Analysis::new(ds).options(opts).run()`")]
    pub fn run_opts(ds: &Dataset, opts: PipelineOptions) -> AnalysisReport {
        Analysis::new(ds).options(opts).run()
    }

    /// Fallible `run_opts`: surfaces a `scheduler/pass` fault injection
    /// as `Err` instead of panicking. The pipeline holds no cross-run
    /// state, so retrying the same call without the fault plan
    /// reproduces the golden report.
    #[deprecated(note = "use the `Analysis` builder: `Analysis::new(ds).options(opts).try_run()`")]
    pub fn try_run_opts(
        ds: &Dataset,
        opts: PipelineOptions,
    ) -> Result<AnalysisReport, PipelineError> {
        Analysis::new(ds).options(opts).try_run()
    }

    /// Like `run_opts`, but records into a caller-supplied [`Obs`].
    /// Loaders use this to land their ingest telemetry in the same
    /// [`RunTelemetry`] as the analysis spans; `opts.telemetry` is
    /// ignored in favour of the recorder's own enabled state.
    #[deprecated(
        note = "use the `Analysis` builder: `Analysis::new(ds).options(opts).obs(obs).run()`"
    )]
    pub fn run_obs(ds: &Dataset, opts: PipelineOptions, obs: &Obs) -> AnalysisReport {
        Analysis::new(ds).options(opts).obs(obs).run()
    }

    /// Fallible `run_obs` — see the `try_run_opts` error contract.
    #[deprecated(
        note = "use the `Analysis` builder: `Analysis::new(ds).options(opts).obs(obs).try_run()`"
    )]
    pub fn try_run_obs(
        ds: &Dataset,
        opts: PipelineOptions,
        obs: &Obs,
    ) -> Result<AnalysisReport, PipelineError> {
        Analysis::new(ds).options(opts).obs(obs).try_run()
    }

    /// Runs the pass scheduler over a context built elsewhere (the
    /// conformance suite uses this to feed the same passes a columnar
    /// and a reference-built context). No telemetry is recorded — the
    /// context build, where most of it lives, already happened.
    #[deprecated(
        note = "use the `Analysis` builder: `Analysis::over(ctx).parallel(parallel).run()`"
    )]
    pub fn run_on(ctx: &AnalysisContext, parallel: bool) -> AnalysisReport {
        Analysis::over(ctx).parallel(parallel).run()
    }

    /// Runs the pipeline through the epoch-sharded engine — see
    /// [`Analysis::epochs`].
    #[deprecated(
        note = "use the `Analysis` builder: `Analysis::new(ds).options(opts).epochs(len).run()`"
    )]
    pub fn run_epochs(ds: &Dataset, opts: PipelineOptions, epoch_len: Seconds) -> AnalysisReport {
        Analysis::new(ds).options(opts).epochs(epoch_len).run()
    }

    /// Fallible `run_epochs`: the `epoch/merge` failpoint is consulted
    /// before every pairwise merge of the fold (and `scheduler/pass`
    /// before every pass), so an injected mid-fold abort surfaces as
    /// `Err` with all intermediate contexts dropped. Retrying rebuilds
    /// every shard from the dataset and reproduces the golden report.
    #[deprecated(
        note = "use the `Analysis` builder: `Analysis::new(ds).options(opts).epochs(len).try_run()`"
    )]
    pub fn try_run_epochs(
        ds: &Dataset,
        opts: PipelineOptions,
        epoch_len: Seconds,
    ) -> Result<AnalysisReport, PipelineError> {
        Analysis::new(ds).options(opts).epochs(epoch_len).try_run()
    }

    /// Runs the pipeline by appending epochs one at a time through an
    /// [`IncrementalPipeline`] — see [`Analysis::incremental`].
    #[deprecated(
        note = "use the `Analysis` builder: `Analysis::new(ds).options(opts).epochs(len).incremental().run()`"
    )]
    pub fn run_incremental(
        ds: &Dataset,
        opts: PipelineOptions,
        epoch_len: Seconds,
    ) -> AnalysisReport {
        Analysis::new(ds)
            .options(opts)
            .epochs(epoch_len)
            .incremental()
            .run()
    }

    /// Fallible `run_incremental` — see
    /// [`IncrementalPipeline::try_append_epoch`] for the per-append
    /// error contract.
    #[deprecated(
        note = "use the `Analysis` builder: `Analysis::new(ds).options(opts).epochs(len).incremental().try_run()`"
    )]
    pub fn try_run_incremental(
        ds: &Dataset,
        opts: PipelineOptions,
        epoch_len: Seconds,
    ) -> Result<AnalysisReport, PipelineError> {
        Analysis::new(ds)
            .options(opts)
            .epochs(epoch_len)
            .incremental()
            .try_run()
    }

    /// The pre-refactor monolithic pipeline — see
    /// [`Analysis::baseline`].
    #[deprecated(
        note = "use the `Analysis` builder: `Analysis::new(ds).spec(spec).baseline().run()`"
    )]
    pub fn run_baseline(ds: &Dataset, spec: ArimaSpec) -> AnalysisReport {
        Analysis::new(ds).spec(spec).baseline().run()
    }
}

/// What one [`IncrementalPipeline::append_epoch`] call did.
#[derive(Debug, Clone)]
pub struct AppendStats {
    /// Zero-based index of the epoch appended.
    pub epoch: usize,
    /// Attacks the epoch contributed.
    pub attacks: usize,
    /// Names of the passes re-run after this append, in registry
    /// order. Empty when the epoch changed nothing a pass reads (e.g.
    /// an epoch with no attacks and no new bots).
    pub reran: Vec<&'static str>,
}

/// An [`Obs`] the pipeline either owns (created from
/// [`PipelineOptions::telemetry`]) or borrows from a caller that wants
/// the spans — [`Obs`] is deliberately not `Clone`, so a long-lived
/// service recording into its own recorder shares it by reference.
enum ObsSlot<'a> {
    Owned(Obs),
    Shared(&'a Obs),
}

impl ObsSlot<'_> {
    fn get(&self) -> &Obs {
        match self {
            ObsSlot::Owned(obs) => obs,
            ObsSlot::Shared(obs) => obs,
        }
    }
}

/// The incremental pipeline: epochs append one at a time, and after
/// each append only the passes whose context inputs changed re-run.
///
/// Each append builds the epoch's [`EpochContext`], merges it into the
/// accumulator, maps the [`crate::epoch::MergeDelta`] to dirty
/// [`CtxPart`]s, and re-executes the dirtied passes
/// ([`passes::passes_dirtied_by`]) against the folded context; clean
/// sections keep their slots. After the last epoch the accumulator
/// covers the whole trace — the merge laws make it bit-identical to the
/// monolithic build — so [`IncrementalPipeline::into_report`] is
/// byte-identical to [`AnalysisReport::run_opts`].
///
/// Mid-stream caveat: passes read `ctx.dataset` for the raw records, so
/// between the first and last append a re-run pass sees the *full*
/// trace's records alongside the folded prefix's context. Intermediate
/// slots are therefore not exact prefix reports; only the final report
/// is pinned. Context-derived indices are always in range, so partial
/// materialization never panics. [`IncrementalPipeline::prefix_exact`]
/// lifts the caveat: passes then materialize against the epoch-prefix
/// dataset, making every intermediate state an exact prefix report
/// ([`IncrementalPipeline::snapshot_report`]).
pub struct IncrementalPipeline<'a> {
    ds: &'a Dataset,
    opts: PipelineOptions,
    obs: ObsSlot<'a>,
    epoch_len: Seconds,
    shards: Vec<DatasetShard<'a>>,
    next: usize,
    acc: Option<EpochContext>,
    partial: PartialReport,
    /// When set, passes re-run against [`Dataset::epoch_prefix`] of the
    /// appended epochs instead of the full trace, so the partial report
    /// after each clean append is byte-identical to a monolithic run
    /// over that prefix — the invariant the serve layer's snapshot
    /// queries rely on.
    prefix_exact: bool,
    /// The materialized prefix dataset (prefix-exact mode only),
    /// rebuilt whenever an append grows the raw record prefix.
    prefix: Option<Dataset>,
    /// Passes dirtied by appended epochs but not yet successfully
    /// re-run. Normally drained within the same append; it only
    /// carries over when a `scheduler/pass` fault aborted the re-run,
    /// so the next append (or the final flush in
    /// [`IncrementalPipeline::try_into_report`]) retries them.
    pending: HashSet<&'static str>,
    /// Radix workspace and fix-up buffers, reused across appends so the
    /// steady-state append allocates no fresh sort scratch.
    scratch: FoldScratch,
}

impl<'a> IncrementalPipeline<'a> {
    /// Slices `ds` into `epoch_len` epochs and readies the pipeline.
    /// Nothing is computed until the first [`append_epoch`] call.
    ///
    /// [`append_epoch`]: IncrementalPipeline::append_epoch
    pub fn new(ds: &'a Dataset, opts: PipelineOptions, epoch_len: Seconds) -> Self {
        let obs = if opts.telemetry {
            Obs::enabled()
        } else {
            Obs::disabled()
        };
        Self::with_slot(ds, opts, epoch_len, ObsSlot::Owned(obs))
    }

    /// Like [`IncrementalPipeline::new`], but records spans and metrics
    /// into a caller-supplied [`Obs`] (which `opts.telemetry` then does
    /// not override) — the serve layer shares its service-wide recorder
    /// with the pipeline this way.
    pub fn with_obs(
        ds: &'a Dataset,
        opts: PipelineOptions,
        epoch_len: Seconds,
        obs: &'a Obs,
    ) -> Self {
        Self::with_slot(ds, opts, epoch_len, ObsSlot::Shared(obs))
    }

    fn with_slot(
        ds: &'a Dataset,
        opts: PipelineOptions,
        epoch_len: Seconds,
        obs: ObsSlot<'a>,
    ) -> Self {
        IncrementalPipeline {
            ds,
            opts,
            obs,
            epoch_len,
            shards: ds.shards(epoch_len),
            next: 0,
            acc: None,
            partial: PartialReport::default(),
            prefix_exact: false,
            prefix: None,
            pending: HashSet::new(),
            scratch: FoldScratch::default(),
        }
    }

    /// Switches the pipeline into prefix-exact mode (before the first
    /// append): every pass re-run materializes against the
    /// [`Dataset::epoch_prefix`] of the appended epochs, so after each
    /// clean append the partial report is byte-identical to a
    /// monolithic run over exactly those epochs' records — the
    /// invariant behind [`IncrementalPipeline::snapshot_report`].
    ///
    /// Costs a prefix-dataset rebuild on every append that grows the
    /// raw record prefix; the final report is unchanged (the last
    /// prefix *is* the full trace).
    pub fn prefix_exact(mut self) -> Self {
        assert_eq!(
            self.next, 0,
            "prefix_exact must be set before the first append"
        );
        self.prefix_exact = true;
        self
    }

    /// Total number of epochs in the slicing.
    pub fn epochs(&self) -> usize {
        self.shards.len()
    }

    /// Epochs appended so far.
    pub fn appended(&self) -> usize {
        self.next
    }

    /// The epoch watermark: how many epochs the state reflects — an
    /// alias of [`IncrementalPipeline::appended`] under the name the
    /// serve layer stamps on every query answer.
    pub fn watermark(&self) -> usize {
        self.next
    }

    /// An exact prefix report at the current watermark, or `None` when
    /// one isn't available: the pipeline is not in
    /// [`prefix_exact`](IncrementalPipeline::prefix_exact) mode, no
    /// epoch has been appended yet, or a `scheduler/pass` fault left
    /// dirtied passes pending (the state is mid-repair; the next clean
    /// append flushes them).
    ///
    /// The returned report is byte-identical to a monolithic run over
    /// `ds.epoch_prefix(epoch_len, watermark())` — the serve
    /// conformance suite pins this. Telemetry is empty (it is run
    /// metadata, not part of the snapshot).
    pub fn snapshot_report(&self) -> Option<AnalysisReport> {
        if !self.prefix_exact || self.next == 0 || !self.pending.is_empty() {
            return None;
        }
        Some(assemble(self.partial.clone()))
    }

    /// Whether every epoch has been appended.
    pub fn is_complete(&self) -> bool {
        self.next == self.shards.len()
    }

    /// Appends the next epoch and re-runs the dirtied passes. Returns
    /// `None` once every epoch has been appended.
    pub fn append_epoch(&mut self) -> Option<AppendStats> {
        fault::infallible(self.try_append_epoch())
    }

    /// Fallible [`append_epoch`] with a two-level error contract:
    ///
    /// * An `epoch/merge` injection is checked **before any state is
    ///   consumed** — on `Err` the pipeline is untouched, and calling
    ///   `try_append_epoch` again retries the *same* epoch (the fault
    ///   suite pins that the in-place retry still reaches the golden
    ///   report).
    /// * A `scheduler/pass` injection aborts the pass re-run after the
    ///   epoch was merged; the dirtied passes stay queued in the
    ///   pending set and the next successful append (or the final
    ///   flush in [`try_into_report`]) re-runs them, so the pipeline
    ///   still converges to the golden report.
    ///
    /// [`append_epoch`]: IncrementalPipeline::append_epoch
    /// [`try_into_report`]: IncrementalPipeline::try_into_report
    pub fn try_append_epoch(&mut self) -> Result<Option<AppendStats>, PipelineError> {
        let epoch = self.next;
        let Some(shard) = self.shards.get(epoch) else {
            // Every epoch is in; flush anything a faulted re-run left
            // pending so a recovered pipeline converges without a
            // trailing `try_into_report`.
            self.try_flush()?;
            return Ok(None);
        };
        fault::check(fault::EPOCH_MERGE, self.obs.get())?;
        self.next += 1;
        let built = EpochContext::build_scratch(shard, self.obs.get(), &mut self.scratch);
        let attacks = built.len();
        // Prefix-exact mode: the raw-record prefix grows whenever the
        // epoch carries attacks or bot records first seen inside it
        // (re-observations of earlier bots are already in the prefix).
        // Passes that read the raw roster (`summary`) declare
        // `CtxPart::Bots`, so dirtying it covers a roster-only growth
        // that appends no folded rows.
        let new_bot_records = self.prefix_exact
            && shard
                .bots()
                .any(|(_, b)| b.first_seen >= shard.span().start);
        let mut parts: Vec<CtxPart> = Vec::new();
        let acc = match self.acc.take() {
            // The first epoch seeds every part: all slots must fill.
            None => {
                parts.extend([
                    CtxPart::Attacks,
                    CtxPart::Bots,
                    CtxPart::Durations,
                    CtxPart::Timelines,
                    CtxPart::Families,
                    CtxPart::Sources,
                ]);
                built
            }
            Some(prev) => {
                let (merged, delta) = {
                    let _span = self.obs.get().span("epoch/merge");
                    prev.merge_scratch(built, &mut self.scratch)
                };
                if delta.appended_attacks > 0 {
                    parts.extend([
                        CtxPart::Attacks,
                        CtxPart::Durations,
                        CtxPart::Timelines,
                        CtxPart::Families,
                        CtxPart::Sources,
                    ]);
                }
                if delta.appended_bots > 0 || new_bot_records {
                    parts.push(CtxPart::Bots);
                }
                if !delta.reresolved.is_empty() {
                    // Re-resolution means bot attributes moved under
                    // resolved ids (arbitration) or extras promoted:
                    // the join, the family aggregates, and the bot
                    // roster views all changed.
                    parts.extend([CtxPart::Bots, CtxPart::Families, CtxPart::Sources]);
                }
                merged
            }
        };
        self.pending.extend(passes::passes_dirtied_by(&parts));
        let reran: Vec<&'static str> = passes::REGISTRY
            .iter()
            .map(|p| p.name)
            .filter(|n| self.pending.contains(n))
            .collect();
        // Commit the merged accumulator before the fallible pass
        // re-run: a pass fault then leaves a consistent context with
        // the un-run passes still queued in `pending`.
        self.acc = Some(acc);
        if self.prefix_exact && (epoch == 0 || attacks > 0 || new_bot_records) {
            // Rebuild the prefix dataset alongside the committed
            // accumulator, also before the fallible re-run: a pass
            // fault then leaves prefix and fold consistent with each
            // other, and the retry materializes against them as-is.
            let _span = self.obs.get().span("epoch/prefix");
            self.prefix = Some(self.ds.epoch_prefix(self.epoch_len, self.next));
        }
        self.try_flush()?;
        Ok(Some(AppendStats {
            epoch,
            attacks,
            reran,
        }))
    }

    /// Re-runs any pending dirtied passes against the current fold.
    /// No-op when nothing is pending.
    fn try_flush(&mut self) -> Result<(), PipelineError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let acc_ref = self
            .acc
            .as_ref()
            .expect("pending passes imply an appended epoch");
        // Prefix-exact runs see exactly the appended epochs' records;
        // the default mode keeps the documented full-trace view.
        let dataset = match &self.prefix {
            Some(prefix) if self.prefix_exact => prefix,
            _ => self.ds,
        };
        let ctx = {
            let _span = self.obs.get().span("epoch/materialize");
            acc_ref
                .to_context(dataset, self.opts.spec)
                .with_kernels(self.opts.kernels)
        };
        passes::try_execute_filtered(
            &ctx,
            self.opts.parallel,
            self.obs.get(),
            &mut self.partial,
            &self.pending,
        )?;
        self.pending.clear();
        Ok(())
    }

    /// Appends any remaining epochs and assembles the final report —
    /// byte-identical to the batch pipeline's.
    pub fn into_report(self) -> AnalysisReport {
        fault::infallible(self.try_into_report())
    }

    /// Fallible [`into_report`]: drives the remaining appends through
    /// [`try_append_epoch`] and flushes any passes a previous faulted
    /// append left pending before assembling.
    ///
    /// [`into_report`]: IncrementalPipeline::into_report
    /// [`try_append_epoch`]: IncrementalPipeline::try_append_epoch
    pub fn try_into_report(mut self) -> Result<AnalysisReport, PipelineError> {
        while self.try_append_epoch()?.is_some() {}
        // The final `Ok(None)` append flushed anything pending.
        let mut report = {
            let _span = self.obs.get().span("assemble");
            assemble(self.partial)
        };
        report.telemetry = self.obs.get().finish(self.opts.parallel);
        Ok(report)
    }
}

/// Assembles the report from a completed pass run. Panics if a slot was
/// never filled — the registry test guards against that.
fn assemble(partial: PartialReport) -> AnalysisReport {
    macro_rules! take {
        ($field:ident) => {
            partial
                .$field
                .expect(concat!("pass left report slot empty: ", stringify!($field)))
        };
    }
    AnalysisReport {
        protocols: take!(protocols),
        protocol_rows: take!(protocol_rows),
        summary: take!(summary),
        daily: take!(daily),
        interval_stats: take!(interval_stats),
        all_interval_stats: take!(all_interval_stats),
        concurrency: take!(concurrency),
        durations: take!(durations),
        shifts: take!(shifts),
        dispersion: take!(dispersion),
        prediction: take!(prediction),
        target_countries: take!(target_countries),
        overall_targets: take!(overall_targets),
        collaborations: take!(collaborations),
        flagship_pair: take!(flagship_pair),
        multistage: take!(multistage),
        activity: take!(activity),
        recurrence: take!(recurrence),
        blacklist: take!(blacklist),
        latency: take!(latency),
        telemetry: RunTelemetry::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    #[test]
    fn report_runs_on_a_tiny_dataset() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Pandora, 2, 120, 700, 1),
            attack(Family::Dirtjumper, 3, 5_000, 900, 2),
        ]);
        let r = AnalysisReport::run(&ds);
        assert_eq!(r.summary.measured.attacks, 3);
        assert_eq!(r.protocols.counts[0].1, 3);
        assert_eq!(r.daily.counts[0], 3);
        assert_eq!(r.collaborations.pairs.len(), 1);
        assert!(r.flagship_pair.is_some());
        assert!(r.durations.is_some());
        // Only families with ≥2 attacks have interval stats.
        let dj = r
            .interval_stats
            .iter()
            .find(|&&(f, _)| f == Family::Dirtjumper)
            .unwrap();
        assert!(dj.1.is_some());
        let nitol = r
            .interval_stats
            .iter()
            .find(|&&(f, _)| f == Family::Nitol)
            .unwrap();
        assert!(nitol.1.is_none());
        // The run carries its telemetry: one span per pass, the build
        // stages under `context/`, and scheduler metrics.
        assert_eq!(
            r.telemetry.spans_under("passes").count(),
            passes::REGISTRY.len()
        );
        assert!(r.telemetry.span("context").is_some());
        assert!(r.telemetry.span("context/bot_table").is_some());
        assert!(r.telemetry.span("assemble").is_some());
        assert!(r.telemetry.parallel);
        assert!(r.telemetry.metrics.counter("scheduler/stages").unwrap() > 0);
    }

    #[test]
    fn report_runs_on_an_empty_dataset() {
        let ds = dataset(vec![]);
        let r = AnalysisReport::run(&ds);
        assert!(r.durations.is_none());
        assert!(r.recurrence.trains.is_empty());
        assert!(r.blacklist.hits.is_empty());
        assert_eq!(r.latency.len(), 5);
        assert!(r.all_interval_stats.is_none());
        assert!(r.flagship_pair.is_none());
        assert!(r.dispersion.is_empty());
        assert!(r.prediction.rows.is_empty());
        assert!(r.multistage.chains.is_empty());
    }

    #[test]
    fn parallel_serial_and_baseline_agree_on_a_tiny_dataset() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 600, 1),
            attack(Family::Dirtjumper, 2, 100, 650, 1),
            attack(Family::Pandora, 3, 120, 700, 1),
            attack(Family::Pandora, 4, 760, 60, 1),
            attack(Family::Pandora, 5, 1_500, 60, 1),
            attack(Family::Pandora, 6, 2_400, 60, 1),
            attack(Family::Dirtjumper, 7, 5_000, 900, 2),
        ]);
        let parallel = Analysis::new(&ds).run();
        let serial = Analysis::new(&ds).parallel(false).run();
        let baseline = Analysis::new(&ds).baseline().run();
        let quiet = Analysis::new(&ds).telemetry(false).run();
        let json = |r: &AnalysisReport| serde_json::to_string(r).unwrap();
        assert_eq!(json(&parallel), json(&serial));
        assert_eq!(json(&parallel), json(&baseline));
        // Telemetry is metadata: excluded from serialization, and
        // turning it off changes nothing but the attached artifact.
        assert_eq!(json(&parallel), json(&quiet));
        assert!(!json(&parallel).contains("telemetry"));
        assert!(!serial.telemetry.parallel);
        assert!(quiet.telemetry.is_empty());
        assert!(baseline.telemetry.is_empty());
    }
}
