//! The epoch-sharded analysis engine: mergeable per-epoch contexts.
//!
//! [`EpochContext`] is one epoch's share of an [`AnalysisContext`]: the
//! epoch's bot and source tables, per-attack vectors, per-target
//! timelines (with stable *global* attack indices), and per-family
//! aggregates (dispersion snapshots and weekly bot maps). Epochs build
//! independently — from a borrowed [`DatasetShard`] or an owned
//! [`EpochBatch`] a feed streams in — and [`EpochContext::merge`] folds
//! two adjacent epochs into one.
//!
//! # Merge laws
//!
//! The fold reproduces [`AnalysisContext::build`] **bit-identically**,
//! for any partition of the trace into epochs, because:
//!
//! * Attacks are globally sorted by `(start, id)` and epochs are
//!   assigned by start time, so each shard's attacks are a contiguous
//!   global index range and per-attack vectors simply concatenate.
//! * Duplicate bot IPs across epochs arbitrate by global record
//!   position (see [`crate::columnar::merge_bot_tables`]) — the winner
//!   is exactly the record the monolithic last-wins build keeps, and
//!   its cached trig bits are copied verbatim.
//! * A merged source table is a pure function of the merged bot table
//!   ([`crate::columnar::merge_source_tables`]); sources that resolve
//!   only against the other epoch's bots are *promoted* in the merge.
//! * Every attack touched by an arbitration or promotion is re-resolved
//!   against the merged tables, restoring the invariant that each
//!   context's aggregates equal a fresh build against its own tables —
//!   which is also why the merge is associative.
//!
//! The `tests/epochs.rs` property suite proves equivalence and
//! associativity over arbitrary partitions (empty epochs and
//! boundary-straddling attacks included), and the golden-report suite
//! pins the folded pipeline to the batch digest.

use std::collections::HashSet;

use ddos_geo::{dispersion_precomp_indexed_counted, KernelCounters};
use ddos_obs::Obs;
use ddos_schema::{
    AttackRecord, BotRecord, CountryCode, Dataset, DatasetShard, EpochBatch, Family, Timestamp,
    Window,
};
use ddos_stats::ArimaSpec;

use crate::columnar::{
    merge_bot_tables, merge_source_tables, radix_sort_by_ip_with, BotTable, RadixScratch,
    SourceTable, NO_BOT,
};
use crate::context::{AnalysisContext, FamilyContext, TargetTimeline};
use crate::kernels::KernelPolicy;
use crate::source::dispersion::FamilyDispersion;
use crate::util::IpMap;

/// Sentinel slot for attacks of families outside [`Family::ACTIVE`].
const NO_SLOT: u8 = u8::MAX;

/// Reusable workspace for epoch builds and merges: the radix-sort
/// scratch (the fold's dominant allocation — ~512 KiB re-allocated per
/// epoch before this) plus the row-filter buffer of the snapshot
/// kernel. One scratch serves any sequence of builds and merges;
/// contents are ignored on entry.
#[derive(Debug, Default)]
pub struct FoldScratch {
    pub(crate) radix: RadixScratch,
    pub(crate) rows: Vec<u32>,
}

/// One active family's share of an epoch.
#[derive(Debug, Clone)]
struct EpochSlot {
    /// Global indices of the family's attacks in this epoch, ascending.
    indices: Vec<u32>,
    /// Dispersion snapshot per attack, aligned to `indices` (`None`
    /// when the kernel found no center), so merge fix-ups can replace
    /// one attack's value in place.
    snaps: Vec<Option<f64>>,
    /// Per *global* window week: the resolvable `(bot, country)`
    /// participants of the family's attacks that week.
    weekly: Vec<IpMap<CountryCode>>,
}

/// What a merge appended or re-resolved — drives the incremental
/// pipeline's pass dirtiness.
#[derive(Debug, Clone)]
pub struct MergeDelta {
    /// Attacks contributed by the right epoch.
    pub appended_attacks: usize,
    /// Bot rows the right epoch added to the merged table.
    pub appended_bots: usize,
    /// Merged-local indices of attacks re-resolved against the merged
    /// tables (duplicate-IP arbitration or extra promotion), ascending.
    pub reresolved: Vec<u32>,
}

/// One epoch's mergeable share of the analysis context.
#[derive(Debug, Clone)]
pub struct EpochContext {
    /// The *global* trace window (week/day bucketing is always global).
    window: Window,
    /// The time span this context covers.
    span: Window,
    /// Global index of the first covered attack.
    attack_base: usize,
    /// Family slot of each covered attack ([`NO_SLOT`] for inactive
    /// families), local order.
    family_slot: Vec<u8>,
    /// Duration of each covered attack, local order.
    durations: Vec<f64>,
    /// Start of each covered attack, local order.
    starts: Vec<Timestamp>,
    /// Per-target timelines over the covered attacks, sorted by target,
    /// carrying global indices.
    timelines: Vec<TargetTimeline>,
    bots: BotTable,
    sources: SourceTable,
    /// One slot per [`Family::ACTIVE`] entry.
    slots: Vec<EpochSlot>,
}

/// Dispersion snapshot of one covered attack against the given tables —
/// the exact kernel call of the monolithic context build.
fn snap_of(
    sources: &SourceTable,
    bots: &BotTable,
    local: usize,
    scratch: &mut Vec<u32>,
    kernel: &KernelCounters,
) -> Option<f64> {
    let ids = sources.ids_of(local);
    let row_list: &[u32] = if sources.unresolved_in(local) == 0 {
        ids
    } else {
        scratch.clear();
        scratch.extend(
            ids.iter()
                .copied()
                .filter(|&id| sources.bot_row(id) != NO_BOT),
        );
        scratch
    };
    dispersion_precomp_indexed_counted(bots.trigs(), row_list, kernel).map(|d| d.value())
}

/// The chunked snapshot kernel: dispersion snapshot of every covered
/// attack, computed as per-chunk partials over the columnar tables and
/// written back in chunk order. Inactive-family attacks stay `None`
/// without ever reaching the kernel (so its counters see exactly the
/// serial build's call sequence), and each element depends only on its
/// own attack — any chunking of the range is bit-identical.
fn dispersion_snapshots(
    sources: &SourceTable,
    bots: &BotTable,
    family_slot: &[u8],
    policy: KernelPolicy,
    rows: &mut Vec<u32>,
    kernel: &KernelCounters,
) -> Vec<Option<f64>> {
    let mut out = vec![None; family_slot.len()];
    for range in policy.chunks(family_slot.len()) {
        for local in range {
            if family_slot[local] != NO_SLOT {
                out[local] = snap_of(sources, bots, local, rows, kernel);
            }
        }
    }
    out
}

impl EpochContext {
    /// Builds one epoch's context from a borrowed shard.
    pub fn build(shard: &DatasetShard<'_>, obs: &Obs) -> EpochContext {
        Self::build_scratch(shard, obs, &mut FoldScratch::default())
    }

    /// [`EpochContext::build`] against a caller-owned workspace, so a
    /// fold over many epochs allocates its radix scratch once.
    pub fn build_scratch(
        shard: &DatasetShard<'_>,
        obs: &Obs,
        ws: &mut FoldScratch,
    ) -> EpochContext {
        Self::build_from(
            shard.dataset().window(),
            shard.span(),
            shard.attack_range().start,
            shard.attacks(),
            shard.bots(),
            obs,
            ws,
        )
    }

    /// Builds one epoch's context from an owned batch (the streaming
    /// path; `window` is the global trace window).
    pub fn build_batch(window: Window, batch: &EpochBatch, obs: &Obs) -> EpochContext {
        Self::build_batch_scratch(window, batch, obs, &mut FoldScratch::default())
    }

    /// [`EpochContext::build_batch`] against a caller-owned workspace.
    pub fn build_batch_scratch(
        window: Window,
        batch: &EpochBatch,
        obs: &Obs,
        ws: &mut FoldScratch,
    ) -> EpochContext {
        Self::build_from(
            window,
            batch.span,
            batch.attack_base,
            &batch.attacks,
            batch.bots.iter().map(|(r, b)| (*r, b)),
            obs,
            ws,
        )
    }

    fn build_from<'r>(
        window: Window,
        span: Window,
        attack_base: usize,
        attacks: &[AttackRecord],
        bot_records: impl IntoIterator<Item = (u32, &'r BotRecord)>,
        obs: &Obs,
        ws: &mut FoldScratch,
    ) -> EpochContext {
        let _span = obs.span("epoch/build");
        let bots = BotTable::from_records_with(bot_records, &mut ws.radix);
        let sources = SourceTable::build_slice(attacks, &bots, false);

        let mut durations = Vec::with_capacity(attacks.len());
        let mut starts = Vec::with_capacity(attacks.len());
        let mut family_slot = Vec::with_capacity(attacks.len());
        for a in attacks {
            durations.push(a.duration().as_f64());
            starts.push(a.start);
            family_slot.push(if a.family.is_active() {
                a.family.index() as u8
            } else {
                NO_SLOT
            });
        }

        // Per-target timelines, same radix construction as the
        // monolithic build, shifted to global indices.
        let mut keyed: Vec<u64> = attacks
            .iter()
            .enumerate()
            .map(|(i, a)| (u64::from(a.target_ip.value()) << 32) | i as u64)
            .collect();
        radix_sort_by_ip_with(&mut keyed, &mut ws.radix);
        let mut timelines: Vec<TargetTimeline> = Vec::new();
        let mut run = 0;
        while run < keyed.len() {
            let target = (keyed[run] >> 32) as u32;
            let mut end = run;
            while end < keyed.len() && (keyed[end] >> 32) as u32 == target {
                end += 1;
            }
            timelines.push(TargetTimeline {
                target: ddos_schema::IpAddr4(target),
                attacks: keyed[run..end]
                    .iter()
                    .map(|&k| attack_base + k as u32 as usize)
                    .collect(),
            });
            run = end;
        }

        // Per-family aggregates: snapshot per attack plus weekly
        // (bot, country) maps, bucketed against the *global* window.
        let num_weeks = window.num_weeks();
        let kernel = KernelCounters::default();
        let mut slots: Vec<EpochSlot> = (0..Family::ACTIVE.len())
            .map(|_| EpochSlot {
                indices: Vec::new(),
                snaps: Vec::new(),
                weekly: vec![IpMap::default(); num_weeks],
            })
            .collect();
        let snaps = dispersion_snapshots(
            &sources,
            &bots,
            &family_slot,
            KernelPolicy::Auto,
            &mut ws.rows,
            &kernel,
        );
        for (local, a) in attacks.iter().enumerate() {
            let slot_id = family_slot[local];
            if slot_id == NO_SLOT {
                continue;
            }
            let slot = &mut slots[slot_id as usize];
            slot.indices.push((attack_base + local) as u32);
            slot.snaps.push(snaps[local]);
            if let Some(w) = window.week_index(a.start) {
                for (k, &id) in sources.ids_of(local).iter().enumerate() {
                    let row = sources.bot_row(id);
                    if row != NO_BOT {
                        slot.weekly[w].insert(a.sources[k], bots.country(row));
                    }
                }
            }
        }
        obs.counter("geo/dispersion_snapshots")
            .add(kernel.snapshots());
        obs.counter("geo/dispersion_points").add(kernel.points());
        obs.counter("geo/dispersion_degenerate")
            .add(kernel.degenerate());

        EpochContext {
            window,
            span,
            attack_base,
            family_slot,
            durations,
            starts,
            timelines,
            bots,
            sources,
            slots,
        }
    }

    /// Global index of the first covered attack.
    #[inline]
    pub fn attack_base(&self) -> usize {
        self.attack_base
    }

    /// Number of covered attacks.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the context covers no attacks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Bot rows resident in this context's table.
    #[inline]
    pub fn bot_rows(&self) -> usize {
        self.bots.len()
    }

    /// The time span covered.
    #[inline]
    pub fn span(&self) -> Window {
        self.span
    }

    /// Merges two adjacent epoch contexts (`self` immediately precedes
    /// `other` in both time and attack index space).
    ///
    /// # Panics
    ///
    /// If the contexts disagree on the global window or are not
    /// adjacent.
    pub fn merge(self, other: EpochContext) -> (EpochContext, MergeDelta) {
        self.merge_scratch(other, &mut FoldScratch::default())
    }

    /// [`EpochContext::merge`] against a caller-owned workspace, so a
    /// long fold reuses one fix-up buffer across every merge.
    ///
    /// # Panics
    ///
    /// As [`EpochContext::merge`].
    pub fn merge_scratch(
        self,
        other: EpochContext,
        ws: &mut FoldScratch,
    ) -> (EpochContext, MergeDelta) {
        let (a, b) = (self, other);
        assert_eq!(a.window, b.window, "epochs from different traces");
        assert_eq!(
            a.span.end, b.span.start,
            "epochs must be time-adjacent (left before right)"
        );
        assert_eq!(
            a.attack_base + a.len(),
            b.attack_base,
            "epochs must cover adjacent attack ranges"
        );

        let appended_attacks = b.len();
        let (bots, ra, rb) = merge_bot_tables(&a.bots, &b.bots);
        let appended_bots = bots.len() - a.bots.len();
        let (sources, affected) = merge_source_tables(&a.sources, &b.sources, &bots, &ra, &rb);

        let mut family_slot = a.family_slot;
        family_slot.extend(b.family_slot);
        let mut durations = a.durations;
        durations.extend(b.durations);
        let mut starts = a.starts;
        starts.extend(b.starts);

        // Timeline splice: both sides are sorted by target and a's
        // global indices all precede b's, so equal targets concatenate.
        let mut timelines = Vec::with_capacity(a.timelines.len() + b.timelines.len());
        let mut ta = a.timelines.into_iter().peekable();
        let mut tb = b.timelines.into_iter().peekable();
        loop {
            match (ta.peek(), tb.peek()) {
                (Some(x), Some(y)) if x.target == y.target => {
                    let mut t = ta.next().unwrap();
                    t.attacks.extend(tb.next().unwrap().attacks);
                    timelines.push(t);
                }
                (Some(x), Some(y)) => {
                    timelines.push(if x.target < y.target {
                        ta.next().unwrap()
                    } else {
                        tb.next().unwrap()
                    });
                }
                (Some(_), None) => timelines.push(ta.next().unwrap()),
                (None, Some(_)) => timelines.push(tb.next().unwrap()),
                (None, None) => break,
            }
        }

        // Per-slot concat: indices stay globally ascending, weekly maps
        // union per week (right side overwrites on collision; every
        // collision that matters is re-resolved below).
        let mut slots = a.slots;
        for (slot, rhs) in slots.iter_mut().zip(b.slots) {
            slot.indices.extend(rhs.indices);
            slot.snaps.extend(rhs.snaps);
            for (w, map) in rhs.weekly.into_iter().enumerate() {
                if slot.weekly[w].is_empty() {
                    slot.weekly[w] = map;
                } else {
                    slot.weekly[w].extend(map);
                }
            }
        }

        // Fix-ups: every attack whose bot attributes changed in the
        // arbitration or whose extras got promoted is re-resolved
        // against the merged tables, restoring the invariant that the
        // aggregates equal a fresh build — the merge's associativity
        // hinges on exactly this.
        let window = a.window;
        let attack_base = a.attack_base;
        let kernel = KernelCounters::default();
        for &local in &affected {
            let local = local as usize;
            let slot_id = family_slot[local];
            if slot_id == NO_SLOT {
                continue;
            }
            let slot = &mut slots[slot_id as usize];
            let global = (attack_base + local) as u32;
            let pos = slot
                .indices
                .binary_search(&global)
                .expect("affected attack indexed in its family slot");
            slot.snaps[pos] = snap_of(&sources, &bots, local, &mut ws.rows, &kernel);
            if let Some(w) = window.week_index(starts[local]) {
                for &id in sources.ids_of(local) {
                    let row = sources.bot_row(id);
                    if row != NO_BOT {
                        slot.weekly[w].insert(sources.ip_of(id), bots.country(row));
                    }
                }
            }
        }

        (
            EpochContext {
                window,
                span: Window {
                    start: a.span.start,
                    end: b.span.end,
                },
                attack_base,
                family_slot,
                durations,
                starts,
                timelines,
                bots,
                sources,
                slots,
            },
            MergeDelta {
                appended_attacks,
                appended_bots,
                reresolved: affected,
            },
        )
    }

    /// The per-family contexts a fold has accumulated, in
    /// [`Family::ACTIVE`] order. Takes the slots by value so the
    /// consuming conversion moves each weekly bot map (the fold's
    /// largest per-family payload) instead of cloning it; the
    /// mid-stream clone path pays for its copy explicitly.
    fn families_from_slots(
        window: Window,
        attack_base: usize,
        attack_starts: &[Timestamp],
        slots: Vec<EpochSlot>,
    ) -> Vec<FamilyContext> {
        slots
            .into_iter()
            .zip(Family::ACTIVE)
            .map(|(slot, family)| {
                let mut series = Vec::new();
                let mut days = HashSet::new();
                let starts: Vec<Timestamp> = slot
                    .indices
                    .iter()
                    .map(|&g| attack_starts[g as usize - attack_base])
                    .collect();
                for (&t, snap) in starts.iter().zip(&slot.snaps) {
                    if let Some(v) = *snap {
                        if let Some(day) = window.day_index(t) {
                            days.insert(day);
                        }
                        series.push((t, v));
                    }
                }
                FamilyContext {
                    family,
                    starts,
                    dispersion: FamilyDispersion {
                        family,
                        series,
                        active_days: days.len(),
                    },
                    weekly_bots: slot.weekly,
                }
            })
            .collect()
    }

    /// Converts a *complete* fold (all epochs merged) into the analysis
    /// context, consuming the accumulator.
    ///
    /// # Panics
    ///
    /// If the fold does not cover `dataset` exactly.
    pub fn into_context(self, dataset: &Dataset, spec: ArimaSpec) -> AnalysisContext<'_> {
        assert_eq!(self.attack_base, 0, "fold must start at the first epoch");
        assert_eq!(self.len(), dataset.len(), "fold must cover every attack");
        assert_eq!(self.window, dataset.window(), "fold from another trace");
        let families =
            Self::families_from_slots(self.window, self.attack_base, &self.starts, self.slots);
        AnalysisContext::from_parts(
            dataset,
            spec,
            self.bots,
            self.sources,
            self.durations,
            self.starts,
            self.timelines,
            families,
        )
    }

    /// Clones a (possibly partial, but prefix-anchored) fold into an
    /// analysis context so passes can run mid-stream. The context's
    /// vectors cover the folded prefix; `ctx.dataset` remains the full
    /// trace, so mid-stream pass outputs that read the dataset directly
    /// see ahead — the incremental pipeline documents this and the
    /// *final* report is exact.
    pub fn to_context<'a>(&self, dataset: &'a Dataset, spec: ArimaSpec) -> AnalysisContext<'a> {
        assert_eq!(self.attack_base, 0, "fold must start at the first epoch");
        let families = Self::families_from_slots(
            self.window,
            self.attack_base,
            &self.starts,
            self.slots.clone(),
        );
        AnalysisContext::from_parts(
            dataset,
            spec,
            self.bots.clone(),
            self.sources.clone(),
            self.durations.clone(),
            self.starts.clone(),
            self.timelines.clone(),
            families,
        )
    }
}

/// Bounded-memory streaming fold over a feed of [`EpochBatch`]es.
///
/// Batches arrive one at a time (e.g. from
/// `ddos_sim::feed::replay_epochs`), build into an [`EpochContext`]
/// each, and merge into the accumulator immediately — the raw records
/// of past epochs are never resident together. The
/// `epoch/resident_rows` gauge tracks the peak raw rows (attacks + bot
/// records) materialized at once.
#[derive(Debug)]
pub struct StreamFold {
    window: Window,
    acc: Option<EpochContext>,
    next_base: usize,
    peak_rows: u64,
    scratch: FoldScratch,
}

impl StreamFold {
    /// Starts an empty fold over a trace window.
    pub fn new(window: Window) -> StreamFold {
        StreamFold {
            window,
            acc: None,
            next_base: 0,
            peak_rows: 0,
            scratch: FoldScratch::default(),
        }
    }

    /// Builds and folds in one epoch batch. Batches must arrive in
    /// epoch order.
    pub fn push(&mut self, batch: &EpochBatch, obs: &Obs) {
        crate::fault::infallible(self.try_push(batch, obs));
    }

    /// Fallible [`push`](StreamFold::push): the `epoch/merge`
    /// failpoint is consulted before any fold state is touched, so an
    /// injected abort returns `Err` with the accumulator intact and
    /// re-pushing the *same* batch resumes the fold cleanly.
    pub fn try_push(
        &mut self,
        batch: &EpochBatch,
        obs: &Obs,
    ) -> Result<(), crate::fault::PipelineError> {
        crate::fault::check(crate::fault::EPOCH_MERGE, obs)?;
        assert_eq!(
            batch.attack_base, self.next_base,
            "batches must arrive in epoch order"
        );
        self.next_base += batch.attacks.len();
        let incoming = (batch.attacks.len() + batch.bots.len()) as u64;
        let resident = incoming
            + self
                .acc
                .as_ref()
                .map_or(0, |acc| (acc.len() + acc.bot_rows()) as u64);
        obs.gauge("epoch/resident_rows").record_max(resident);
        self.peak_rows = self.peak_rows.max(resident);
        let ctx = EpochContext::build_batch_scratch(self.window, batch, obs, &mut self.scratch);
        self.acc = Some(match self.acc.take() {
            None => ctx,
            Some(acc) => {
                let span = obs.span("epoch/merge");
                let (merged, _) = acc.merge_scratch(ctx, &mut self.scratch);
                drop(span);
                merged
            }
        });
        Ok(())
    }

    /// Peak raw rows (attacks + bot records) resident at once.
    pub fn peak_resident_rows(&self) -> u64 {
        self.peak_rows
    }

    /// Finishes the fold, returning the accumulated context (`None` if
    /// no batch was pushed).
    pub fn finish(self) -> Option<EpochContext> {
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddos_sim::{generate, SimConfig};

    /// The snapshot kernel is chunking-invariant — chunk size 1,
    /// uneven chunks, and chunks wider than the input all reproduce the
    /// reference scan bit-for-bit, counters included (inactive-family
    /// attacks never reach the kernel on any path).
    #[test]
    fn snapshot_kernel_is_chunking_invariant() {
        let cfg = SimConfig {
            scale: 0.004,
            ..SimConfig::small()
        };
        let trace = generate(&cfg);
        let ds = &trace.dataset;
        let bots = BotTable::build(ds);
        let sources = SourceTable::build(ds, &bots, false);
        let family_slot: Vec<u8> = ds
            .attacks()
            .iter()
            .map(|a| {
                if a.family.is_active() {
                    a.family.index() as u8
                } else {
                    NO_SLOT
                }
            })
            .collect();
        assert!(!family_slot.is_empty(), "sim trace must cover attacks");

        let run = |policy: KernelPolicy| {
            let kernel = KernelCounters::default();
            let mut rows = Vec::new();
            let snaps =
                dispersion_snapshots(&sources, &bots, &family_slot, policy, &mut rows, &kernel);
            (
                snaps,
                kernel.snapshots(),
                kernel.points(),
                kernel.degenerate(),
            )
        };
        let reference = run(KernelPolicy::Reference);
        for chunk in [1, 7, ds.len() + 5] {
            assert_eq!(
                run(KernelPolicy::Chunked(chunk)),
                reference,
                "chunk={chunk}"
            );
        }
        assert_eq!(run(KernelPolicy::Auto), reference);
    }
}
