//! Defense-insight simulations.
//!
//! The paper closes every analysis section with an "Insight into
//! defenses" paragraph; this module turns the two actionable ones into
//! measurable simulations over a trace:
//!
//! * **Blacklist warm-up (§V summary)** — *"if we could model the
//!   consecutive patterns of DDoS attacks, then the defender could
//!   leverage this information to prepare for the next rounds of
//!   attacks, e.g., by utilizing a blacklist."* [`BlacklistSim`] measures
//!   how much of a repeat attack's source population was already seen in
//!   earlier attacks on the same target — the upper bound on what a
//!   per-victim source blacklist can pre-block.
//! * **Detection-latency window (§III-D)** — *"80% of the attacks have a
//!   duration less than four hours ... Only [automatic detection] can
//!   effectively respond in such a short time frame."*
//!   [`detection_latency_sweep`] computes, for a grid of detection
//!   latencies, the fraction of total attack-time that a defense
//!   activating after that latency can still mitigate.

use std::collections::{HashMap, HashSet};

use ddos_schema::{CountryCode, Dataset, Family, IpAddr4};
use ddos_stats::descriptive;
use serde::{Deserialize, Serialize};

use crate::util::BotIndex;

/// Coverage of one repeat attack by the victim's source blacklist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlacklistHit {
    /// The repeatedly attacked target.
    pub target: IpAddr4,
    /// Which repeat this was (1 = second attack on the target).
    pub round: usize,
    /// Fraction of this attack's sources already on the blacklist.
    pub coverage: f64,
    /// Family that launched the repeat attack.
    pub family: Family,
}

/// The blacklist warm-up simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlacklistSim {
    /// One entry per repeat attack (second and later attacks on any
    /// target), in trace order.
    pub hits: Vec<BlacklistHit>,
}

impl BlacklistSim {
    /// Replays the trace: every target accumulates the sources of the
    /// attacks it has already suffered; each later attack is scored by
    /// how much of it the accumulated blacklist would pre-block.
    pub fn run(ds: &Dataset) -> BlacklistSim {
        let mut blacklists: HashMap<IpAddr4, HashSet<IpAddr4>> = HashMap::new();
        let mut rounds: HashMap<IpAddr4, usize> = HashMap::new();
        let mut hits = Vec::new();
        for a in ds.attacks() {
            let list = blacklists.entry(a.target_ip).or_default();
            let round = rounds.entry(a.target_ip).or_insert(0);
            if *round > 0 && !a.sources.is_empty() {
                let known = a.sources.iter().filter(|ip| list.contains(ip)).count();
                hits.push(BlacklistHit {
                    target: a.target_ip,
                    round: *round,
                    coverage: known as f64 / a.sources.len() as f64,
                    family: a.family,
                });
            }
            list.extend(a.sources.iter().copied());
            *round += 1;
        }
        BlacklistSim { hits }
    }

    /// Context-based variant of [`BlacklistSim::run`]: replays each
    /// target's timeline independently (the blacklist state of one
    /// target never influences another), then restores trace order by
    /// sorting on the attack index.
    ///
    /// Runs entirely on the context's [`SourceTable`] dictionary ids: a
    /// per-id generation stamp (the timeline index that last
    /// blacklisted the id) replaces the per-target hash set, so the
    /// replay does no hashing and no per-target allocation. Coverage is
    /// identical to the IP-based replay because each attack's id slice
    /// mirrors its source list one-to-one, duplicates included.
    ///
    /// [`SourceTable`]: crate::columnar::SourceTable
    pub fn run_ctx(ctx: &crate::context::AnalysisContext) -> BlacklistSim {
        // The fused sweep measured slower than the two-pass reference
        // replay (BENCH_passes.json, 0.92x), so Auto routes here too;
        // only an explicit Chunked(_) forces the fused kernel on.
        if !ctx.kernels.forced_chunked() {
            return Self::run_ctx_reference(ctx);
        }
        let attacks = ctx.dataset.attacks();
        let sources = &ctx.sources;
        const NEVER: u32 = u32::MAX;
        debug_assert!((attacks.len() as u64) < u64::from(NEVER));
        // The fused kernel folds the count pass and the stamp pass into
        // one sweep per attack. Each id's stamp holds the attack index
        // of its *first* touch by whichever target touched it last; the
        // small `target_of` side table recovers that attack's target,
        // keeping the dictionary-sized stamp array at four bytes per id
        // (the replay's working set is this array, randomly indexed —
        // halving it versus a packed owner|round u64 is what makes the
        // fused sweep beat the two-pass reference scan). An occurrence
        // is pre-blocked iff its target owns the stamp from a different
        // (hence strictly earlier, since a timeline replays in round
        // order) attack — so duplicates within one attack score exactly
        // like the two-pass scan, never against themselves — and stamps
        // are only written on ownership change, preserving first touch.
        // Targets read only their own stamps, so chunking the timeline
        // list leaves every coverage untouched; the final sort on
        // attack index restores trace order for any chunking.
        let mut target_of: Vec<u32> = vec![0; attacks.len()];
        for (t, tl) in ctx.target_timelines.iter().enumerate() {
            for &i in &tl.attacks {
                target_of[i] = t as u32;
            }
        }
        let mut stamp: Vec<u32> = vec![NEVER; sources.dict_len()];
        let mut indexed: Vec<(usize, BlacklistHit)> = Vec::new();
        for range in ctx.kernels.chunks(ctx.target_timelines.len()) {
            for t in range {
                let tl = &ctx.target_timelines[t];
                let t32 = t as u32;
                for (round, &i) in tl.attacks.iter().enumerate() {
                    let i32 = i as u32;
                    let ids = sources.ids_of(i);
                    let mut known = 0usize;
                    for &id in ids {
                        let e = &mut stamp[id as usize];
                        if *e != NEVER && target_of[*e as usize] == t32 {
                            known += usize::from(*e != i32);
                        } else {
                            *e = i32;
                        }
                    }
                    if round > 0 && !ids.is_empty() {
                        indexed.push((
                            i,
                            BlacklistHit {
                                target: tl.target,
                                round,
                                coverage: known as f64 / ids.len() as f64,
                                family: attacks[i].family,
                            },
                        ));
                    }
                }
            }
        }
        indexed.sort_unstable_by_key(|&(i, _)| i);
        BlacklistSim {
            hits: indexed.into_iter().map(|(_, h)| h).collect(),
        }
    }

    /// The reference id-stamp replay ([`KernelPolicy::Reference`]): a
    /// count pass then a stamp pass per attack.
    ///
    /// [`KernelPolicy::Reference`]: crate::kernels::KernelPolicy::Reference
    fn run_ctx_reference(ctx: &crate::context::AnalysisContext) -> BlacklistSim {
        let attacks = ctx.dataset.attacks();
        let sources = &ctx.sources;
        const NEVER: u32 = u32::MAX;
        debug_assert!((ctx.target_timelines.len() as u64) < u64::from(NEVER));
        let mut stamp: Vec<u32> = vec![NEVER; sources.dict_len()];
        let mut indexed: Vec<(usize, BlacklistHit)> = Vec::new();
        for (t, tl) in ctx.target_timelines.iter().enumerate() {
            let t = t as u32;
            for (round, &i) in tl.attacks.iter().enumerate() {
                let ids = sources.ids_of(i);
                if round > 0 && !ids.is_empty() {
                    let known = ids.iter().filter(|&&id| stamp[id as usize] == t).count();
                    indexed.push((
                        i,
                        BlacklistHit {
                            target: tl.target,
                            round,
                            coverage: known as f64 / ids.len() as f64,
                            family: attacks[i].family,
                        },
                    ));
                }
                for &id in ids {
                    stamp[id as usize] = t;
                }
            }
        }
        indexed.sort_unstable_by_key(|&(i, _)| i);
        BlacklistSim {
            hits: indexed.into_iter().map(|(_, h)| h).collect(),
        }
    }

    /// Mean coverage over all repeat attacks.
    pub fn mean_coverage(&self) -> Option<f64> {
        let xs: Vec<f64> = self.hits.iter().map(|h| h.coverage).collect();
        descriptive::mean(&xs)
    }

    /// Mean coverage restricted to one family's repeat attacks.
    pub fn mean_coverage_for(&self, family: Family) -> Option<f64> {
        let xs: Vec<f64> = self
            .hits
            .iter()
            .filter(|h| h.family == family)
            .map(|h| h.coverage)
            .collect();
        descriptive::mean(&xs)
    }

    /// Mean coverage by repeat round (does the blacklist get better with
    /// every round?). Returns `(round, mean_coverage, samples)`.
    pub fn coverage_by_round(&self, max_round: usize) -> Vec<(usize, f64, usize)> {
        let mut out = Vec::new();
        for round in 1..=max_round {
            let xs: Vec<f64> = self
                .hits
                .iter()
                .filter(|h| h.round == round)
                .map(|h| h.coverage)
                .collect();
            if let Some(mean) = descriptive::mean(&xs) {
                out.push((round, mean, xs.len()));
            }
        }
        out
    }
}

/// One point of the detection-latency sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyPoint {
    /// Detection + reaction latency in seconds.
    pub latency_s: f64,
    /// Fraction of total attack-seconds still mitigable after the
    /// latency has elapsed.
    pub mitigable_fraction: f64,
    /// Fraction of attacks that end before the defense reacts at all.
    pub missed_attacks: f64,
}

/// Sweeps detection latencies over the trace's attack durations.
///
/// A latency grid like `[60, 600, 3600, 4*3600, 24*3600]` contrasts an
/// automatic responder (≈1 minute) with semi-automatic (≈1 hour) and
/// manual (≈4 hours — the paper's detection-window discussion) handling.
pub fn detection_latency_sweep(ds: &Dataset, latencies_s: &[f64]) -> Vec<LatencyPoint> {
    let durations: Vec<f64> = ds.attacks().iter().map(|a| a.duration().as_f64()).collect();
    latency_sweep_from_durations(&durations, latencies_s)
}

/// The sweep over an already-extracted duration sample (trace order) —
/// lets the pipeline reuse the duration vector precomputed in the
/// analysis context.
pub fn latency_sweep_from_durations(durations: &[f64], latencies_s: &[f64]) -> Vec<LatencyPoint> {
    let total: f64 = durations.iter().sum();
    latencies_s
        .iter()
        .map(|&latency_s| {
            if durations.is_empty() || total <= 0.0 {
                return LatencyPoint {
                    latency_s,
                    mitigable_fraction: 0.0,
                    missed_attacks: 0.0,
                };
            }
            let mitigable: f64 = durations.iter().map(|&d| (d - latency_s).max(0.0)).sum();
            let missed = durations.iter().filter(|&&d| d <= latency_s).count();
            LatencyPoint {
                latency_s,
                mitigable_fraction: mitigable / total,
                missed_attacks: missed as f64 / durations.len() as f64,
            }
        })
        .collect()
}

/// One step of the country-prioritized takedown simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TakedownStep {
    /// Country disinfected at this step.
    pub country: CountryCode,
    /// Bots removed by disinfecting it.
    pub bots_removed: usize,
    /// Cumulative fraction of all attack *participations* (attack ×
    /// source pairs) eliminated after this step.
    pub cumulative_participation_removed: f64,
}

/// §IV-B insight: *"findings concerning the country-level
/// characterization can set some guidelines on country-level
/// prioritization of disinfection and botnet takedowns."*
///
/// Simulates disinfecting countries in descending order of resident bot
/// count and reports how quickly attack participation collapses — the
/// regionalization of Fig. 8 is what makes the curve steep.
pub fn takedown_priority(ds: &Dataset, bots: &BotIndex, max_steps: usize) -> Vec<TakedownStep> {
    // Participation weight per country: how many (attack, source) pairs
    // each country contributes.
    let mut participation: HashMap<CountryCode, usize> = HashMap::new();
    let mut bots_per_country: HashMap<CountryCode, HashSet<IpAddr4>> = HashMap::new();
    let mut total = 0usize;
    for a in ds.attacks() {
        for &ip in &a.sources {
            let Some((cc, _)) = bots.lookup(ip) else {
                continue;
            };
            *participation.entry(cc).or_default() += 1;
            bots_per_country.entry(cc).or_default().insert(ip);
            total += 1;
        }
    }
    let mut order: Vec<(CountryCode, usize)> = bots_per_country
        .iter()
        .map(|(&cc, ips)| (cc, ips.len()))
        .collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut removed = 0usize;
    let mut out = Vec::new();
    for (country, bot_count) in order.into_iter().take(max_steps) {
        removed += participation.get(&country).copied().unwrap_or(0);
        out.push(TakedownStep {
            country,
            bots_removed: bot_count,
            cumulative_participation_removed: if total > 0 {
                removed as f64 / total as f64
            } else {
                0.0
            },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    fn ip(last: u8) -> IpAddr4 {
        IpAddr4::from_octets(203, 0, 113, last)
    }

    #[test]
    fn blacklist_coverage_accumulates() {
        let mut a1 = attack(Family::Dirtjumper, 1, 100, 10, 1);
        a1.sources = vec![ip(1), ip(2)];
        let mut a2 = attack(Family::Dirtjumper, 2, 500, 10, 1);
        a2.sources = vec![ip(1), ip(3)]; // half known
        let mut a3 = attack(Family::Pandora, 3, 900, 10, 1);
        a3.sources = vec![ip(1), ip(2), ip(3), ip(4)]; // 3/4 known
        let ds = dataset(vec![a1, a2, a3]);
        let sim = BlacklistSim::run(&ds);
        assert_eq!(sim.hits.len(), 2);
        assert_eq!(sim.hits[0].round, 1);
        assert!((sim.hits[0].coverage - 0.5).abs() < 1e-12);
        assert!((sim.hits[1].coverage - 0.75).abs() < 1e-12);
        assert!((sim.mean_coverage().unwrap() - 0.625).abs() < 1e-12);
        assert_eq!(sim.mean_coverage_for(Family::Pandora), Some(0.75));
        assert_eq!(sim.mean_coverage_for(Family::Nitol), None);
        let by_round = sim.coverage_by_round(3);
        assert_eq!(by_round.len(), 2);
        assert_eq!(by_round[0], (1, 0.5, 1));
    }

    #[test]
    fn ctx_replay_matches_ip_replay() {
        // Interleaved targets with shared and unseen sources: the
        // id-stamp replay must score exactly like the hash-set replay.
        let mut a1 = attack(Family::Dirtjumper, 1, 100, 10, 1);
        a1.sources = vec![ip(1), ip(2), ip(2)];
        let mut a2 = attack(Family::Pandora, 2, 200, 10, 2);
        a2.sources = vec![ip(2), ip(3)];
        let mut a3 = attack(Family::Dirtjumper, 3, 300, 10, 1);
        a3.sources = vec![ip(2), ip(4)];
        let mut a4 = attack(Family::Pandora, 4, 400, 10, 2);
        a4.sources = vec![ip(2), ip(3), ip(5)];
        let ds = dataset(vec![a1, a2, a3, a4]);
        let ctx = crate::context::AnalysisContext::new(&ds);
        assert_eq!(BlacklistSim::run(&ds), BlacklistSim::run_ctx(&ctx));
        // The fused packed-stamp kernel and the two-pass reference scan
        // agree for every chunking, duplicate occurrences included.
        use crate::kernels::KernelPolicy;
        let expect = BlacklistSim::run_ctx_reference(&ctx);
        for policy in [
            KernelPolicy::Auto,
            KernelPolicy::Chunked(1),
            KernelPolicy::Chunked(2),
            KernelPolicy::Chunked(100),
        ] {
            let forced = crate::context::AnalysisContext::new(&ds).with_kernels(policy);
            assert_eq!(BlacklistSim::run_ctx(&forced), expect, "{policy:?}");
        }
    }

    #[test]
    fn first_attacks_never_score() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 10, 1),
            attack(Family::Dirtjumper, 2, 500, 10, 2), // different target
        ]);
        let sim = BlacklistSim::run(&ds);
        assert!(sim.hits.is_empty());
        assert_eq!(sim.mean_coverage(), None);
    }

    #[test]
    fn latency_sweep_monotone() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 100, 1),
            attack(Family::Dirtjumper, 2, 500, 10_000, 2),
        ]);
        let sweep = detection_latency_sweep(&ds, &[0.0, 60.0, 1_000.0, 20_000.0]);
        assert_eq!(sweep[0].mitigable_fraction, 1.0);
        assert_eq!(sweep[0].missed_attacks, 0.0);
        // Monotone decreasing mitigation with latency.
        for w in sweep.windows(2) {
            assert!(w[0].mitigable_fraction >= w[1].mitigable_fraction);
            assert!(w[0].missed_attacks <= w[1].missed_attacks);
        }
        // At 1,000 s the 100 s attack is entirely missed.
        assert_eq!(sweep[2].missed_attacks, 0.5);
        // Beyond every duration nothing is mitigable.
        assert_eq!(sweep[3].mitigable_fraction, 0.0);
        assert_eq!(sweep[3].missed_attacks, 1.0);
    }

    #[test]
    fn takedown_curve_is_monotone_and_ordered() {
        use ddos_schema::record::{BotRecord, Location};
        use ddos_schema::{Asn, BotnetId, CityId, DatasetBuilder, LatLon, OrgId, Timestamp};
        let mut b = DatasetBuilder::new(crate::overview::test_support::window());
        let bot = |last: u8, cc: &str| BotRecord {
            ip: ip(last),
            botnet: BotnetId(1),
            family: Family::Dirtjumper,
            location: Location {
                country: cc.parse().unwrap(),
                city: CityId(1),
                org: OrgId(1),
                asn: Asn(64_000),
                coords: LatLon::new_unchecked(50.0, 30.0),
            },
            first_seen: Timestamp(0),
            last_seen: Timestamp(1_000),
        };
        // Three RU bots, one US bot.
        for (last, cc) in [(1, "RU"), (2, "RU"), (3, "RU"), (4, "US")] {
            b.push_bot(bot(last, cc)).unwrap();
        }
        let mut a = attack(Family::Dirtjumper, 1, 100, 10, 1);
        a.sources = vec![ip(1), ip(2), ip(4)];
        let mut a2 = attack(Family::Dirtjumper, 2, 500, 10, 2);
        a2.sources = vec![ip(3), ip(4)];
        b.push_attack(a).unwrap();
        b.push_attack(a2).unwrap();
        let ds = b.build().unwrap();
        let idx = crate::util::BotIndex::build(&ds);
        let steps = takedown_priority(&ds, &idx, 5);
        assert_eq!(steps.len(), 2);
        // RU hosts the most bots → first takedown target.
        assert_eq!(steps[0].country, "RU".parse().unwrap());
        assert_eq!(steps[0].bots_removed, 3);
        assert!((steps[0].cumulative_participation_removed - 0.6).abs() < 1e-12);
        assert_eq!(steps[1].cumulative_participation_removed, 1.0);
    }

    #[test]
    fn takedown_with_no_resolvable_bots() {
        let ds = dataset(vec![attack(Family::Dirtjumper, 1, 100, 10, 1)]);
        let idx = crate::util::BotIndex::build(&ds);
        assert!(takedown_priority(&ds, &idx, 5).is_empty());
    }

    #[test]
    fn empty_trace_is_harmless() {
        let ds = dataset(vec![]);
        let sim = BlacklistSim::run(&ds);
        assert!(sim.hits.is_empty());
        let sweep = detection_latency_sweep(&ds, &[60.0]);
        assert_eq!(sweep[0].mitigable_fraction, 0.0);
    }
}
