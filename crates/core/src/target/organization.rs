//! Fig. 14 — organization-level victim hotspots.
//!
//! Each marker aggregates one victim organization: how many attacks it
//! absorbed, how many distinct target IPs it exposed, and where on the
//! map to draw it (mean of its targets' coordinates).

use std::collections::{HashMap, HashSet};

use ddos_schema::{Dataset, Family, IpAddr4, LatLon, OrgId, Timestamp};

/// One victim organization on the map.
#[derive(Debug, Clone, PartialEq)]
pub struct OrgMarker {
    /// The organization.
    pub org: OrgId,
    /// Mean coordinates of the organization's attacked targets.
    pub coords: LatLon,
    /// Attacks against the organization.
    pub attacks: usize,
    /// Distinct target IPs inside the organization.
    pub targets: usize,
}

/// Fig. 14 for one family: victim organizations ranked by attack count.
#[derive(Debug, Clone)]
pub struct OrgAnalysis {
    /// Markers sorted by attacks descending (ties broken by org id).
    pub markers: Vec<OrgMarker>,
}

impl OrgAnalysis {
    /// Aggregates `family`'s attacks by victim organization, optionally
    /// restricted to attacks starting in `[window.0, window.1)`.
    pub fn compute(
        ds: &Dataset,
        family: Family,
        window: Option<(Timestamp, Timestamp)>,
    ) -> OrgAnalysis {
        struct Acc {
            lat_sum: f64,
            lon_sum: f64,
            attacks: usize,
            targets: HashSet<IpAddr4>,
        }
        let mut groups: HashMap<OrgId, Acc> = HashMap::new();
        for atk in ds.attacks() {
            if atk.family != family {
                continue;
            }
            if let Some((lo, hi)) = window {
                if atk.start < lo || atk.start >= hi {
                    continue;
                }
            }
            let acc = groups.entry(atk.target.org).or_insert_with(|| Acc {
                lat_sum: 0.0,
                lon_sum: 0.0,
                attacks: 0,
                targets: HashSet::new(),
            });
            acc.lat_sum += atk.target.coords.lat;
            acc.lon_sum += atk.target.coords.lon;
            acc.attacks += 1;
            acc.targets.insert(atk.target_ip);
        }
        let mut markers: Vec<OrgMarker> = groups
            .into_iter()
            .map(|(org, acc)| OrgMarker {
                org,
                coords: LatLon::new_unchecked(
                    acc.lat_sum / acc.attacks as f64,
                    acc.lon_sum / acc.attacks as f64,
                ),
                attacks: acc.attacks,
                targets: acc.targets.len(),
            })
            .collect();
        markers.sort_by(|a, b| b.attacks.cmp(&a.attacks).then(a.org.cmp(&b.org)));
        OrgAnalysis { markers }
    }

    /// Number of distinct victim organizations.
    pub fn organizations(&self) -> usize {
        self.markers.len()
    }
}

/// The active family attacking the widest set of organizations, with
/// that organization count. Ties go to the earlier family in
/// `Family::ACTIVE`.
pub fn widest_presence(ds: &Dataset) -> Option<(Family, usize)> {
    let mut orgs: HashMap<Family, HashSet<OrgId>> = HashMap::new();
    for atk in ds.attacks() {
        orgs.entry(atk.family).or_default().insert(atk.target.org);
    }
    Family::ACTIVE
        .into_iter()
        .map(|family| (family, orgs.get(&family).map_or(0, HashSet::len)))
        .max_by_key(|&(family, n)| (n, std::cmp::Reverse(family)))
        .filter(|&(_, n)| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    #[test]
    fn groups_by_org_and_counts_targets() {
        let ds = dataset(vec![
            attack(Family::Pandora, 1, 100, 60, 1),
            attack(Family::Pandora, 2, 200, 60, 1),
            attack(Family::Pandora, 3, 300, 60, 2),
            attack(Family::Dirtjumper, 4, 400, 60, 3),
        ]);
        let orgs = OrgAnalysis::compute(&ds, Family::Pandora, None);
        // test_support locations all map to one org.
        assert_eq!(orgs.organizations(), 1);
        assert_eq!(orgs.markers[0].attacks, 3);
        assert_eq!(orgs.markers[0].targets, 2);
    }

    #[test]
    fn window_filters_by_start() {
        let ds = dataset(vec![
            attack(Family::Pandora, 1, 100, 60, 1),
            attack(Family::Pandora, 2, 5_000, 60, 1),
        ]);
        let orgs =
            OrgAnalysis::compute(&ds, Family::Pandora, Some((Timestamp(0), Timestamp(1_000))));
        assert_eq!(orgs.markers[0].attacks, 1);
    }

    #[test]
    fn widest_presence_needs_attacks() {
        let empty = dataset(vec![]);
        assert!(widest_presence(&empty).is_none());
        let ds = dataset(vec![attack(Family::Dirtjumper, 1, 100, 60, 1)]);
        assert_eq!(widest_presence(&ds), Some((Family::Dirtjumper, 1)));
    }
}
