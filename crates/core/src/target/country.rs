//! Table V — country-level victim preferences per family.
//!
//! The paper observes that each botnet family concentrates on a small
//! set of countries (Dirtjumper on the US, Nitol and Darkshell on
//! China, ...). A profile counts attacks by the target's country and
//! ranks the result.

use std::collections::HashMap;

use ddos_schema::{CountryCode, Dataset, Family};
use serde::{Deserialize, Serialize};

use crate::kernels::{cc_of_slot, cc_slot, CC_SLOTS};

/// One family's victim-country ranking.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyCountryProfile {
    /// The attacking family.
    pub family: Family,
    /// `(country, attacks)` sorted by attacks descending (ties broken by
    /// country code so the ranking is deterministic).
    pub by_country: Vec<(CountryCode, usize)>,
    /// Number of distinct victim countries.
    pub countries: usize,
}

impl FamilyCountryProfile {
    /// Counts this family's attacks per victim country.
    pub fn compute(ds: &Dataset, family: Family) -> FamilyCountryProfile {
        let mut counts: HashMap<CountryCode, usize> = HashMap::new();
        for atk in ds.attacks() {
            if atk.family == family {
                *counts.entry(atk.target.country).or_insert(0) += 1;
            }
        }
        let by_country = rank(counts);
        FamilyCountryProfile {
            family,
            countries: by_country.len(),
            by_country,
        }
    }

    /// The family's most-attacked country, if it attacked at all.
    pub fn favourite(&self) -> Option<CountryCode> {
        self.by_country.first().map(|&(cc, _)| cc)
    }

    /// The top `k` countries (fewer if the family hit fewer).
    pub fn top(&self, k: usize) -> &[(CountryCode, usize)] {
        &self.by_country[..k.min(self.by_country.len())]
    }
}

/// Table V for every active family, in `Family::ACTIVE` order.
pub fn all_profiles(ds: &Dataset) -> Vec<FamilyCountryProfile> {
    Family::ACTIVE
        .into_iter()
        .map(|family| FamilyCountryProfile::compute(ds, family))
        .collect()
}

/// The overall top `k` victim countries across every family.
pub fn overall_top_countries(ds: &Dataset, k: usize) -> Vec<(CountryCode, usize)> {
    let mut counts: HashMap<CountryCode, usize> = HashMap::new();
    for atk in ds.attacks() {
        *counts.entry(atk.target.country).or_insert(0) += 1;
    }
    let mut ranked = rank(counts);
    ranked.truncate(k);
    ranked
}

/// The chunked profile kernel behind [`all_profiles`]: one scan over
/// the trace accumulates a dense `(family, country)` count grid as
/// per-chunk integer partials (disjoint cells, so any chunking merges
/// to the same counts), replacing the reference path's one full-trace
/// scan *per family*. Ranking then runs on the grid alone, with the
/// same total order as [`all_profiles`] — identical profiles.
pub fn all_profiles_ctx(ctx: &crate::context::AnalysisContext) -> Vec<FamilyCountryProfile> {
    if ctx.kernels.is_reference() {
        return all_profiles(ctx.dataset);
    }
    let attacks = ctx.dataset.attacks();
    // `Family::ACTIVE` lists the variants in discriminant order, so the
    // discriminant doubles as the row index.
    let mut grid = vec![0u32; Family::ACTIVE.len() * CC_SLOTS];
    for range in ctx.kernels.chunks(attacks.len()) {
        for a in &attacks[range] {
            if a.family.is_active() {
                grid[(a.family as usize) * CC_SLOTS + cc_slot(a.target.country)] += 1;
            }
        }
    }
    Family::ACTIVE
        .into_iter()
        .enumerate()
        .map(|(row, family)| {
            let by_country = rank_dense(&grid[row * CC_SLOTS..(row + 1) * CC_SLOTS]);
            FamilyCountryProfile {
                family,
                countries: by_country.len(),
                by_country,
            }
        })
        .collect()
}

/// The chunked kernel behind [`overall_top_countries`]: the same dense
/// count grid over a single country row.
pub fn overall_top_countries_ctx(
    ctx: &crate::context::AnalysisContext,
    k: usize,
) -> Vec<(CountryCode, usize)> {
    if ctx.kernels.is_reference() {
        return overall_top_countries(ctx.dataset, k);
    }
    let attacks = ctx.dataset.attacks();
    let mut row = vec![0u32; CC_SLOTS];
    for range in ctx.kernels.chunks(attacks.len()) {
        for a in &attacks[range] {
            row[cc_slot(a.target.country)] += 1;
        }
    }
    let mut ranked = rank_dense(&row);
    ranked.truncate(k);
    ranked
}

fn rank(counts: HashMap<CountryCode, usize>) -> Vec<(CountryCode, usize)> {
    let mut ranked: Vec<(CountryCode, usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

/// Ranks the non-zero cells of a dense country row with the exact
/// comparator of [`rank`] — same `(country, count)` set, same total
/// order, so the output matches the hash-map path entry for entry.
fn rank_dense(row: &[u32]) -> Vec<(CountryCode, usize)> {
    let mut ranked: Vec<(CountryCode, usize)> = row
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .map(|(slot, &n)| (cc_of_slot(slot), n as usize))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    #[test]
    fn profile_counts_and_ranks() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 60, 1),
            attack(Family::Dirtjumper, 2, 200, 60, 2),
            attack(Family::Pandora, 3, 300, 60, 3),
        ]);
        let p = FamilyCountryProfile::compute(&ds, Family::Dirtjumper);
        assert_eq!(p.by_country.iter().map(|&(_, n)| n).sum::<usize>(), 2);
        assert_eq!(p.countries, p.by_country.len());
        assert!(p.favourite().is_some());
        assert!(p.top(1).len() == 1);

        let empty = FamilyCountryProfile::compute(&ds, Family::Nitol);
        assert!(empty.favourite().is_none());
        assert!(empty.top(5).is_empty());
    }

    #[test]
    fn overall_counts_every_attack() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 60, 1),
            attack(Family::Pandora, 2, 200, 60, 1),
        ]);
        let top = overall_top_countries(&ds, 5);
        assert_eq!(top.iter().map(|&(_, n)| n).sum::<usize>(), 2);
    }

    #[test]
    fn dense_kernels_match_hash_ranking_for_every_chunking() {
        use crate::kernels::KernelPolicy;
        // Ties (two countries with one attack each) exercise the
        // comparator's country-code tiebreak.
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 60, 1),
            attack(Family::Dirtjumper, 2, 200, 60, 1),
            attack(Family::Dirtjumper, 3, 300, 60, 2),
            attack(Family::Pandora, 4, 400, 60, 3),
            attack(Family::Yzf, 5, 500, 60, 2),
        ]);
        let expect_profiles = serde_json::to_string(&all_profiles(&ds)).unwrap();
        let expect_top = overall_top_countries(&ds, 3);
        for policy in [
            KernelPolicy::Reference,
            KernelPolicy::Auto,
            KernelPolicy::Chunked(1),
            KernelPolicy::Chunked(2),
            KernelPolicy::Chunked(100),
        ] {
            let ctx = crate::context::AnalysisContext::new(&ds).with_kernels(policy);
            assert_eq!(
                serde_json::to_string(&all_profiles_ctx(&ctx)).unwrap(),
                expect_profiles,
                "{policy:?}"
            );
            assert_eq!(overall_top_countries_ctx(&ctx, 3), expect_top, "{policy:?}");
        }
    }

    #[test]
    fn profiles_cover_active_families() {
        let ds = dataset(vec![attack(Family::Dirtjumper, 1, 100, 60, 1)]);
        let profiles = all_profiles(&ds);
        assert_eq!(profiles.len(), Family::ACTIVE.len());
    }
}
