//! Table V — country-level victim preferences per family.
//!
//! The paper observes that each botnet family concentrates on a small
//! set of countries (Dirtjumper on the US, Nitol and Darkshell on
//! China, ...). A profile counts attacks by the target's country and
//! ranks the result.

use std::collections::HashMap;

use ddos_schema::{CountryCode, Dataset, Family};
use serde::{Deserialize, Serialize};

/// One family's victim-country ranking.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyCountryProfile {
    /// The attacking family.
    pub family: Family,
    /// `(country, attacks)` sorted by attacks descending (ties broken by
    /// country code so the ranking is deterministic).
    pub by_country: Vec<(CountryCode, usize)>,
    /// Number of distinct victim countries.
    pub countries: usize,
}

impl FamilyCountryProfile {
    /// Counts this family's attacks per victim country.
    pub fn compute(ds: &Dataset, family: Family) -> FamilyCountryProfile {
        let mut counts: HashMap<CountryCode, usize> = HashMap::new();
        for atk in ds.attacks() {
            if atk.family == family {
                *counts.entry(atk.target.country).or_insert(0) += 1;
            }
        }
        let by_country = rank(counts);
        FamilyCountryProfile {
            family,
            countries: by_country.len(),
            by_country,
        }
    }

    /// The family's most-attacked country, if it attacked at all.
    pub fn favourite(&self) -> Option<CountryCode> {
        self.by_country.first().map(|&(cc, _)| cc)
    }

    /// The top `k` countries (fewer if the family hit fewer).
    pub fn top(&self, k: usize) -> &[(CountryCode, usize)] {
        &self.by_country[..k.min(self.by_country.len())]
    }
}

/// Table V for every active family, in `Family::ACTIVE` order.
pub fn all_profiles(ds: &Dataset) -> Vec<FamilyCountryProfile> {
    Family::ACTIVE
        .into_iter()
        .map(|family| FamilyCountryProfile::compute(ds, family))
        .collect()
}

/// The overall top `k` victim countries across every family.
pub fn overall_top_countries(ds: &Dataset, k: usize) -> Vec<(CountryCode, usize)> {
    let mut counts: HashMap<CountryCode, usize> = HashMap::new();
    for atk in ds.attacks() {
        *counts.entry(atk.target.country).or_insert(0) += 1;
    }
    let mut ranked = rank(counts);
    ranked.truncate(k);
    ranked
}

fn rank(counts: HashMap<CountryCode, usize>) -> Vec<(CountryCode, usize)> {
    let mut ranked: Vec<(CountryCode, usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    #[test]
    fn profile_counts_and_ranks() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 60, 1),
            attack(Family::Dirtjumper, 2, 200, 60, 2),
            attack(Family::Pandora, 3, 300, 60, 3),
        ]);
        let p = FamilyCountryProfile::compute(&ds, Family::Dirtjumper);
        assert_eq!(p.by_country.iter().map(|&(_, n)| n).sum::<usize>(), 2);
        assert_eq!(p.countries, p.by_country.len());
        assert!(p.favourite().is_some());
        assert!(p.top(1).len() == 1);

        let empty = FamilyCountryProfile::compute(&ds, Family::Nitol);
        assert!(empty.favourite().is_none());
        assert!(empty.top(5).is_empty());
    }

    #[test]
    fn overall_counts_every_attack() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 60, 1),
            attack(Family::Pandora, 2, 200, 60, 1),
        ]);
        let top = overall_top_countries(&ds, 5);
        assert_eq!(top.iter().map(|&(_, n)| n).sum::<usize>(), 2);
    }

    #[test]
    fn profiles_cover_active_families() {
        let ds = dataset(vec![attack(Family::Dirtjumper, 1, 100, 60, 1)]);
        let profiles = all_profiles(&ds);
        assert_eq!(profiles.len(), Family::ACTIVE.len());
    }
}
