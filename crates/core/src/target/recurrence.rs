//! Abstract finding 2 — targets are attacked repeatedly, and the next
//! attack's start time is predictable from the victim's history.
//!
//! A [`TargetTrain`] is one victim's chronological attack history. The
//! predictor walks each train: after seeing `i ≥ 3` attacks it predicts
//! the next start as `last start + median gap so far` and scores the
//! prediction against the actual start.

use std::collections::HashMap;

use ddos_schema::{Dataset, Family, IpAddr4, Timestamp};
use ddos_stats::descriptive::{median, quantile_sorted};
use ddos_stats::ecdf::Ecdf;
use serde::{Deserialize, Serialize};

use crate::kernels::KernelPolicy;

/// Minimum attacks a target needs before it forms a train.
pub const MIN_TRAIN_LEN: usize = 4;

/// One repeatedly-attacked target's history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetTrain {
    /// The victim IP.
    pub target: IpAddr4,
    /// Attack start times, ascending.
    pub starts: Vec<Timestamp>,
    /// Families that attacked this target, in first-seen order.
    pub families: Vec<Family>,
}

impl TargetTrain {
    /// Number of attacks in the train.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the train is empty (never true for a constructed train).
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }
}

/// One scored next-attack prediction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionOutcome {
    /// The victim IP.
    pub target: IpAddr4,
    /// Predicted start of the next attack.
    pub predicted: Timestamp,
    /// Actual start of the next attack.
    pub actual: Timestamp,
    /// `|actual − predicted|` in seconds.
    pub abs_error_s: f64,
    /// Absolute error relative to the train's median gap.
    pub relative_error: f64,
}

/// Recurrence analysis: every train plus every scored prediction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecurrenceAnalysis {
    /// Trains sorted by length descending (ties broken by target IP).
    pub trains: Vec<TargetTrain>,
    /// Prediction outcomes in train order.
    pub outcomes: Vec<PredictionOutcome>,
}

impl RecurrenceAnalysis {
    /// Builds trains for every target with at least [`MIN_TRAIN_LEN`]
    /// attacks, optionally restricted to attacks starting in
    /// `[window.0, window.1)`, and scores the median-gap predictor on
    /// each.
    pub fn compute(ds: &Dataset, window: Option<(Timestamp, Timestamp)>) -> RecurrenceAnalysis {
        let mut by_target: HashMap<IpAddr4, TargetTrain> = HashMap::new();
        // Dataset attacks are sorted by start time, so each train's
        // starts come out ascending without re-sorting.
        for atk in ds.attacks() {
            if let Some((lo, hi)) = window {
                if atk.start < lo || atk.start >= hi {
                    continue;
                }
            }
            let train = by_target
                .entry(atk.target_ip)
                .or_insert_with(|| TargetTrain {
                    target: atk.target_ip,
                    starts: Vec::new(),
                    families: Vec::new(),
                });
            train.starts.push(atk.start);
            if !train.families.contains(&atk.family) {
                train.families.push(atk.family);
            }
        }
        let mut trains: Vec<TargetTrain> = by_target
            .into_values()
            .filter(|t| t.len() >= MIN_TRAIN_LEN)
            .collect();
        trains.sort_by(|a, b| b.len().cmp(&a.len()).then(a.target.cmp(&b.target)));
        let outcomes = score_trains(&trains);
        RecurrenceAnalysis { trains, outcomes }
    }

    /// Context-based variant of [`RecurrenceAnalysis::compute`] over the
    /// whole window: builds the trains from the per-target timelines
    /// already grouped in the analysis context.
    pub fn compute_ctx(ctx: &crate::context::AnalysisContext) -> RecurrenceAnalysis {
        let attacks = ctx.dataset.attacks();
        let mut trains: Vec<TargetTrain> = ctx
            .target_timelines
            .iter()
            .filter(|t| t.attacks.len() >= MIN_TRAIN_LEN)
            .map(|t| {
                let mut families = Vec::new();
                let starts = t
                    .attacks
                    .iter()
                    .map(|&i| {
                        let a = &attacks[i];
                        if !families.contains(&a.family) {
                            families.push(a.family);
                        }
                        a.start
                    })
                    .collect();
                TargetTrain {
                    target: t.target,
                    starts,
                    families,
                }
            })
            .collect();
        trains.sort_by(|a, b| b.len().cmp(&a.len()).then(a.target.cmp(&b.target)));
        let outcomes = if ctx.kernels.is_reference() {
            score_trains(&trains)
        } else {
            score_trains_kernel(&trains, ctx.kernels)
        };
        RecurrenceAnalysis { trains, outcomes }
    }

    /// The most-attacked target's train.
    pub fn hottest_target(&self) -> Option<&TargetTrain> {
        self.trains.first()
    }

    /// ECDF of absolute prediction errors in seconds.
    pub fn error_cdf(&self) -> Option<Ecdf> {
        let errors: Vec<f64> = self.outcomes.iter().map(|o| o.abs_error_s).collect();
        Ecdf::new(&errors)
    }

    /// Median absolute prediction error in seconds.
    pub fn median_abs_error(&self) -> Option<f64> {
        let errors: Vec<f64> = self.outcomes.iter().map(|o| o.abs_error_s).collect();
        median(&errors)
    }

    /// Fraction of predictions within `seconds` of the actual start
    /// (0.0 when there are no outcomes).
    pub fn fraction_within(&self, seconds: f64) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let hits = self
            .outcomes
            .iter()
            .filter(|o| o.abs_error_s <= seconds)
            .count();
        hits as f64 / self.outcomes.len() as f64
    }
}

/// Walks every train with the median-gap predictor and scores each
/// prediction (trains must already be in their final sorted order).
fn score_trains(trains: &[TargetTrain]) -> Vec<PredictionOutcome> {
    let mut outcomes = Vec::new();
    for train in trains {
        let gaps: Vec<f64> = train
            .starts
            .windows(2)
            .map(|w| (w[1].0 - w[0].0) as f64)
            .collect();
        for i in (MIN_TRAIN_LEN - 1)..train.len() {
            let median_gap = median(&gaps[..i - 1]).expect("i >= 3 gives >= 2 gaps");
            let predicted = Timestamp(train.starts[i - 1].0 + median_gap.round() as i64);
            let actual = train.starts[i];
            let abs_error_s = (actual.0 - predicted.0).abs() as f64;
            outcomes.push(PredictionOutcome {
                target: train.target,
                predicted,
                actual,
                abs_error_s,
                // Relative to the typical gap; the max(1.0) floor keeps
                // the ratio finite for back-to-back attacks (a
                // non-finite value would not survive JSON).
                relative_error: abs_error_s / median_gap.max(1.0),
            });
        }
    }
    outcomes
}

/// The chunked prediction kernel: scores the same walk as
/// [`score_trains`] but keeps the gap prefix in one incrementally
/// maintained sorted buffer instead of re-cloning and re-sorting it at
/// every step. The reference's `median(&gaps[..i-1])` reads values by
/// rank from the ascending prefix multiset; insertion by
/// `partition_point` maintains exactly that multiset, so every median
/// (duplicates included) is bit-identical. Trains are independent, so
/// per-chunk outcome runs concatenated in chunk order reproduce the
/// sequential outcome order for any chunking.
fn score_trains_kernel(trains: &[TargetTrain], policy: KernelPolicy) -> Vec<PredictionOutcome> {
    let mut outcomes = Vec::new();
    let mut sorted: Vec<f64> = Vec::new();
    for range in policy.chunks(trains.len()) {
        for train in &trains[range] {
            sorted.clear();
            let starts = &train.starts;
            for i in (MIN_TRAIN_LEN - 1)..starts.len() {
                while sorted.len() < i - 1 {
                    let j = sorted.len();
                    let gap = (starts[j + 1].0 - starts[j].0) as f64;
                    let pos = sorted.partition_point(|&x| x < gap);
                    sorted.insert(pos, gap);
                }
                let median_gap = quantile_sorted(&sorted, 0.5);
                let predicted = Timestamp(starts[i - 1].0 + median_gap.round() as i64);
                let actual = starts[i];
                let abs_error_s = (actual.0 - predicted.0).abs() as f64;
                outcomes.push(PredictionOutcome {
                    target: train.target,
                    predicted,
                    actual,
                    abs_error_s,
                    relative_error: abs_error_s / median_gap.max(1.0),
                });
            }
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    fn periodic_ds() -> Dataset {
        // Target 1: attacked every 1000 s, 6 times — perfectly
        // predictable. Target 2: only 2 attacks — below MIN_TRAIN_LEN.
        let mut attacks = Vec::new();
        for i in 0..6 {
            attacks.push(attack(
                Family::Dirtjumper,
                i + 1,
                1_000 * (i as i64 + 1),
                60,
                1,
            ));
        }
        attacks.push(attack(Family::Pandora, 10, 1_500, 60, 2));
        attacks.push(attack(Family::Pandora, 11, 2_500, 60, 2));
        dataset(attacks)
    }

    #[test]
    fn trains_respect_min_len() {
        let rec = RecurrenceAnalysis::compute(&periodic_ds(), None);
        assert_eq!(rec.trains.len(), 1);
        assert_eq!(rec.hottest_target().unwrap().len(), 6);
        assert_eq!(
            rec.hottest_target().unwrap().families,
            vec![Family::Dirtjumper]
        );
    }

    #[test]
    fn periodic_train_predicts_exactly() {
        let rec = RecurrenceAnalysis::compute(&periodic_ds(), None);
        // 6 attacks → predictions for indices 3, 4, 5.
        assert_eq!(rec.outcomes.len(), 3);
        for o in &rec.outcomes {
            assert_eq!(o.abs_error_s, 0.0);
            assert_eq!(o.relative_error, 0.0);
        }
        assert_eq!(rec.median_abs_error(), Some(0.0));
        assert_eq!(rec.fraction_within(3_600.0), 1.0);
        assert_eq!(rec.error_cdf().unwrap().len(), 3);
    }

    #[test]
    fn empty_dataset_yields_nothing() {
        let rec = RecurrenceAnalysis::compute(&dataset(vec![]), None);
        assert!(rec.trains.is_empty());
        assert!(rec.outcomes.is_empty());
        assert!(rec.hottest_target().is_none());
        assert!(rec.error_cdf().is_none());
        assert!(rec.median_abs_error().is_none());
        assert_eq!(rec.fraction_within(1.0), 0.0);
    }

    #[test]
    fn kernel_scorer_matches_reference_for_every_chunking() {
        // Irregular gaps (duplicates, zero gaps, mixed magnitudes)
        // across trains of different lengths.
        let train = |target: u8, starts: Vec<i64>| TargetTrain {
            target: IpAddr4::from_octets(192, 0, 2, target),
            starts: starts.into_iter().map(Timestamp).collect(),
            families: vec![Family::Dirtjumper],
        };
        let trains = vec![
            train(1, vec![0, 10, 10, 35, 36, 90, 90, 1_000]),
            train(2, vec![5, 1_005, 2_005, 3_200, 3_200]),
            train(3, vec![0, 1, 2, 3]),
        ];
        let expect = serde_json::to_string(&score_trains(&trains)).unwrap();
        for policy in [
            KernelPolicy::Auto,
            KernelPolicy::Chunked(1),
            KernelPolicy::Chunked(2),
            KernelPolicy::Chunked(100),
        ] {
            let got = serde_json::to_string(&score_trains_kernel(&trains, policy)).unwrap();
            assert_eq!(got, expect, "{policy:?}");
        }
    }

    #[test]
    fn window_restricts_trains() {
        let rec =
            RecurrenceAnalysis::compute(&periodic_ds(), Some((Timestamp(0), Timestamp(3_500))));
        // Only 3 of target 1's attacks start before 3500 s.
        assert!(rec.trains.is_empty());
    }
}
