//! §IV-B target analysis: who gets attacked, and how predictably.
//!
//! - [`country`] — Table V: per-family victim-country profiles.
//! - [`organization`] — Fig. 14: organization-level hotspot markers.
//! - [`asn`] — the "1260 victim ASes" breakdown and AS-level pressure.
//! - [`recurrence`] — abstract finding 2: repeatedly-attacked targets
//!   and next-attack start-time prediction.

pub mod asn;
pub mod country;
pub mod organization;
pub mod recurrence;
