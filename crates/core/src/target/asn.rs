//! AS-level victim pressure — the paper's "1260 victim ASes".
//!
//! Groups every attack by the target's autonomous system and ranks the
//! ASes by how much attack traffic they absorb. `contested` ASes are
//! those attacked by two or more different families.

use std::collections::{HashMap, HashSet};

use ddos_schema::{Asn, Dataset, Family, IpAddr4, Timestamp};

/// Attack pressure on one autonomous system.
#[derive(Debug, Clone)]
pub struct AsnPressure {
    /// The autonomous system.
    pub asn: Asn,
    /// Attacks targeting the AS.
    pub attacks: usize,
    /// Distinct victim IPs inside the AS.
    pub targets: usize,
    /// Families attacking the AS, in first-seen order.
    pub families: Vec<Family>,
}

/// AS-level pressure ranking over the whole dataset.
#[derive(Debug, Clone)]
pub struct AsnAnalysis {
    /// Pressure rows sorted by attacks descending (ties broken by ASN).
    pub pressure: Vec<AsnPressure>,
}

impl AsnAnalysis {
    /// Groups attacks by victim AS, optionally restricted to attacks
    /// starting in `[window.0, window.1)`.
    pub fn compute(ds: &Dataset, window: Option<(Timestamp, Timestamp)>) -> AsnAnalysis {
        struct Acc {
            attacks: usize,
            targets: HashSet<IpAddr4>,
            families: Vec<Family>,
        }
        let mut groups: HashMap<Asn, Acc> = HashMap::new();
        for atk in ds.attacks() {
            if let Some((lo, hi)) = window {
                if atk.start < lo || atk.start >= hi {
                    continue;
                }
            }
            let acc = groups.entry(atk.target.asn).or_insert_with(|| Acc {
                attacks: 0,
                targets: HashSet::new(),
                families: Vec::new(),
            });
            acc.attacks += 1;
            acc.targets.insert(atk.target_ip);
            if !acc.families.contains(&atk.family) {
                acc.families.push(atk.family);
            }
        }
        let mut pressure: Vec<AsnPressure> = groups
            .into_iter()
            .map(|(asn, acc)| AsnPressure {
                asn,
                attacks: acc.attacks,
                targets: acc.targets.len(),
                families: acc.families,
            })
            .collect();
        pressure.sort_by(|a, b| b.attacks.cmp(&a.attacks).then(a.asn.cmp(&b.asn)));
        AsnAnalysis { pressure }
    }

    /// Number of distinct victim ASes.
    pub fn distinct_asns(&self) -> usize {
        self.pressure.len()
    }

    /// Fraction of all attacks absorbed by the `k` most-attacked ASes
    /// (0.0 for an empty analysis).
    pub fn top_k_share(&self, k: usize) -> f64 {
        let total: usize = self.pressure.iter().map(|p| p.attacks).sum();
        if total == 0 {
            return 0.0;
        }
        let top: usize = self.pressure.iter().take(k).map(|p| p.attacks).sum();
        top as f64 / total as f64
    }

    /// ASes attacked by at least two different families.
    pub fn contested(&self) -> impl Iterator<Item = &AsnPressure> {
        self.pressure.iter().filter(|p| p.families.len() >= 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};

    #[test]
    fn covers_every_attack() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 60, 1),
            attack(Family::Pandora, 2, 200, 60, 1),
            attack(Family::Pandora, 3, 300, 60, 2),
        ]);
        let asn = AsnAnalysis::compute(&ds, None);
        let total: usize = asn.pressure.iter().map(|p| p.attacks).sum();
        assert_eq!(total, ds.len());
        assert_eq!(asn.distinct_asns(), ds.summary().victims.asns);
        assert_eq!(asn.top_k_share(usize::MAX), 1.0);
        // test_support maps everything to one AS, hit by two families.
        assert_eq!(asn.contested().count(), 1);
    }

    #[test]
    fn shares_are_monotone_in_k() {
        let ds = dataset(vec![
            attack(Family::Dirtjumper, 1, 100, 60, 1),
            attack(Family::Pandora, 2, 200, 60, 2),
        ]);
        let asn = AsnAnalysis::compute(&ds, None);
        assert!(asn.top_k_share(1) <= asn.top_k_share(2));
        assert_eq!(asn.top_k_share(0), 0.0);
    }

    #[test]
    fn empty_analysis() {
        let asn = AsnAnalysis::compute(&dataset(vec![]), None);
        assert_eq!(asn.distinct_asns(), 0);
        assert_eq!(asn.top_k_share(5), 0.0);
        assert_eq!(asn.contested().count(), 0);
    }
}
