//! `ddos-analytics` — the paper's DDoS characterization and analysis
//! pipeline.
//!
//! This crate is the primary contribution of the reproduced paper: given
//! a seven-month attack trace in the feed's schemas (a
//! [`ddos_schema::Dataset`]), it computes every characterization the
//! paper reports:
//!
//! | Paper section | Module | Artifacts |
//! |---|---|---|
//! | §II-D, §III overview | [`overview`] | Fig. 1–7, Table II |
//! | Table III | [`summary`] | workload summary |
//! | §IV-A source analysis | [`source`] | Fig. 8–13, Table IV |
//! | §IV-B target analysis | [`target`] | Table V, Fig. 14 |
//! | §V collaborations | [`collab`] | Table VI, Fig. 15–18 |
//! | abstract finding 2 | [`target::recurrence`] | next-attack start prediction |
//! | "insight into defenses" | [`defense`] | blacklist & latency simulations |
//!
//! [`Analysis`] is the one entry point: a builder that names a dataset,
//! picks an engine (monolithic, epoch-folded, incremental, or the
//! pre-refactor baseline), and runs — every spelling serializes
//! byte-identically. The `ddos-report` crate renders the results as the
//! paper's tables and figure series, the `ddos-serve` crate keeps an
//! [`IncrementalPipeline`] resident and answers snapshot-isolated
//! queries while epochs append, and the `bench` crate regenerates each
//! artifact individually.
//!
//! The analyses are *pure*: they read the dataset (plus the shared joins
//! built once in [`context`]) and never mutate it. The pass-based
//! pipeline exploits this: [`passes`] registers every report section as
//! a named pass over the [`context::AnalysisContext`] and schedules the
//! independent ones on scoped threads, with a guarantee that the
//! parallel report serializes byte-identically to the serial one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod collab;
pub mod columnar;
pub mod context;
pub mod defense;
pub mod epoch;
pub mod fault;
pub mod kernels;
pub mod overview;
pub mod passes;
pub mod pipeline;
pub mod preprocess;
pub mod source;
pub mod summary;
pub mod target;
pub mod util;

pub use analysis::Analysis;
pub use columnar::{BotTable, SourceTable, NO_BOT};
pub use context::AnalysisContext;
pub use epoch::{EpochContext, FoldScratch, MergeDelta, StreamFold};
pub use fault::PipelineError;
pub use kernels::KernelPolicy;
pub use pipeline::{AnalysisReport, AppendStats, IncrementalPipeline, PipelineOptions};

/// The handful of names every pipeline consumer needs:
/// `use ddos_analytics::prelude::*;` and go.
pub mod prelude {
    pub use crate::analysis::Analysis;
    pub use crate::context::AnalysisContext;
    pub use crate::epoch::StreamFold;
    pub use crate::fault::PipelineError;
    pub use crate::kernels::KernelPolicy;
    pub use crate::pipeline::{AnalysisReport, AppendStats, IncrementalPipeline, PipelineOptions};
    pub use ddos_obs::Obs;
    pub use ddos_schema::{Dataset, Seconds};
    pub use ddos_stats::ArimaSpec;
}
