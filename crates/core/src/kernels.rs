//! Kernel execution policy for the data-parallel pass bodies.
//!
//! PR 7 makes the heavy pass bodies *chunked*: a gated pass computes
//! per-chunk partials over the columnar substrate and merges them
//! deterministically in chunk order, so the report stays byte-identical
//! to the serial algorithms for any chunk size (DESIGN.md §12 states
//! the contract). [`KernelPolicy`] selects which body runs:
//!
//! * [`KernelPolicy::Reference`] — the pre-kernel (PR 6) algorithms,
//!   kept verbatim as the in-binary baseline the equivalence suite and
//!   `repro --pass-bench` hold the kernels bit-equal to.
//! * [`KernelPolicy::Auto`] — chunked kernels, one chunk per available
//!   worker (the default). Two passes are exceptions: `blacklist` and
//!   `interval_stats` measured *slower* chunked than reference
//!   (BENCH_passes.json, 0.92x), so under `Auto` those route to their
//!   reference bodies and are never a regression.
//! * [`KernelPolicy::Chunked`] — chunked kernels with a fixed chunk
//!   length, the override the proptests use to force degenerate
//!   chunkings (size 1, size larger than the input). Forces the
//!   chunked body on for every gated pass, including the two `Auto`
//!   routes back to reference.

use std::ops::Range;

use crate::columnar::{chunk_ranges, worker_count};
use ddos_schema::CountryCode;

/// How the gated pass kernels execute. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// The pre-kernel reference algorithms (PR 6 pass bodies).
    Reference,
    /// Chunked kernels, one chunk per available worker.
    #[default]
    Auto,
    /// Chunked kernels with a fixed chunk length (clamped to ≥ 1).
    Chunked(usize),
}

impl KernelPolicy {
    /// Whether this policy selects the reference pass bodies.
    pub fn is_reference(self) -> bool {
        matches!(self, KernelPolicy::Reference)
    }

    /// Whether chunked execution was explicitly forced on. Passes whose
    /// chunked kernel measured slower than its reference body
    /// (`blacklist`, `interval_stats`) run the reference body unless
    /// this is true, so `Auto` is never slower than `Reference` on any
    /// pass while `Chunked(_)` still exercises every kernel for the
    /// equivalence suites.
    pub fn forced_chunked(self) -> bool {
        matches!(self, KernelPolicy::Chunked(_))
    }

    /// The contiguous chunk ranges this policy cuts an input of `len`
    /// elements into. Ranges cover `0..len` exactly, in order; an empty
    /// input yields no ranges. `Reference` never consults this (the
    /// reference bodies are unchunked); it chunks like `Auto` so helper
    /// code can call it unconditionally.
    pub fn chunks(self, len: usize) -> Vec<Range<usize>> {
        match self {
            KernelPolicy::Reference | KernelPolicy::Auto => chunk_ranges(len, worker_count()),
            KernelPolicy::Chunked(c) => {
                let c = c.max(1);
                let mut out = Vec::with_capacity(len.div_ceil(c));
                let mut lo = 0;
                while lo < len {
                    let hi = (lo + c).min(len);
                    out.push(lo..hi);
                    lo = hi;
                }
                out
            }
        }
    }
}

/// Number of dense [`cc_slot`] values (26 × 26 two-letter codes).
pub(crate) const CC_SLOTS: usize = 26 * 26;

/// Dense array slot of a country code: both bytes are ASCII uppercase
/// by `CountryCode`'s invariant, so codes index `[0, 26 * 26)` — the
/// chunked shift kernel trades its per-week hash sets for flat arrays.
#[inline]
pub(crate) fn cc_slot(cc: CountryCode) -> usize {
    let b = cc.as_str().as_bytes();
    (b[0] - b'A') as usize * 26 + (b[1] - b'A') as usize
}

/// Inverse of [`cc_slot`]: the country code a dense slot denotes. Slots
/// come from `cc_slot`, so the two bytes are always uppercase ASCII.
#[inline]
pub(crate) fn cc_of_slot(slot: usize) -> CountryCode {
    CountryCode::new(b'A' + (slot / 26) as u8, b'A' + (slot % 26) as u8)
        .expect("dense slot maps to an uppercase ASCII pair")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_for_every_policy() {
        for policy in [
            KernelPolicy::Reference,
            KernelPolicy::Auto,
            KernelPolicy::Chunked(0),
            KernelPolicy::Chunked(1),
            KernelPolicy::Chunked(3),
            KernelPolicy::Chunked(100),
        ] {
            for len in [0usize, 1, 2, 7, 64] {
                let ranges = policy.chunks(len);
                let covered: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(covered, len, "{policy:?} over {len}");
                assert!(ranges.windows(2).all(|w| w[0].end == w[1].start));
                if len > 0 {
                    assert_eq!(ranges.first().unwrap().start, 0);
                    assert_eq!(ranges.last().unwrap().end, len);
                } else {
                    assert!(ranges.is_empty());
                }
            }
        }
        // A fixed chunk length cuts exactly ceil(len / c) ranges.
        assert_eq!(KernelPolicy::Chunked(3).chunks(7).len(), 3);
        assert_eq!(KernelPolicy::Chunked(100).chunks(7).len(), 1);
    }

    #[test]
    fn cc_slots_are_dense_and_distinct() {
        let us = cc_slot("US".parse().unwrap());
        let ru = cc_slot("RU".parse().unwrap());
        assert!(us < CC_SLOTS && ru < CC_SLOTS);
        assert_ne!(us, ru);
        assert_eq!(cc_slot("AA".parse().unwrap()), 0);
        assert_eq!(cc_slot("ZZ".parse().unwrap()), CC_SLOTS - 1);
    }

    #[test]
    fn cc_of_slot_inverts_cc_slot() {
        for slot in 0..CC_SLOTS {
            assert_eq!(cc_slot(cc_of_slot(slot)), slot);
        }
    }
}
