//! Fig. 8 — weekly shift patterns of attack sources.
//!
//! The paper: *"we extract all the bots involved in DDoS attacks for each
//! family and aggregate the number of these bots per week ... Shifts are
//! categorized into two clusters based on their destination locations,
//! existing countries or new countries."* The headline observation is the
//! two-orders-of-magnitude gap: shifts overwhelmingly stay inside the
//! family's existing country footprint.

use std::collections::{HashMap, HashSet};

use ddos_schema::{CountryCode, Dataset, Family, IpAddr4};
use serde::{Deserialize, Serialize};

use crate::kernels::{cc_slot, KernelPolicy, CC_SLOTS};
use crate::util::BotIndex;

/// One week's aggregated shift counts (Fig. 8's stacked bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeekShift {
    /// Week index within the window.
    pub week: usize,
    /// Distinct bots attacking from countries the family had already
    /// used (the left, 10⁴-scale cluster).
    pub existing_country_bots: usize,
    /// Distinct bots attacking from countries first seen this week (the
    /// right, 10³-scale cluster).
    pub new_country_bots: usize,
}

/// The full shift-pattern analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShiftAnalysis {
    /// Per-week aggregate over all active families.
    pub weeks: Vec<WeekShift>,
}

impl ShiftAnalysis {
    /// Computes weekly shifts from attack participation.
    pub fn compute(ds: &Dataset, bots: &BotIndex) -> ShiftAnalysis {
        let window = ds.window();
        let num_weeks = window.num_weeks();
        let mut weeks = Self::empty_weeks(num_weeks);

        for family in Family::ACTIVE {
            // Distinct bots per week, with their countries.
            let mut weekly: Vec<HashMap<IpAddr4, CountryCode>> = vec![HashMap::new(); num_weeks];
            for a in ds.attacks_of(family) {
                let Some(w) = window.week_index(a.start) else {
                    continue;
                };
                for &ip in &a.sources {
                    if let Some((cc, _)) = bots.lookup(ip) {
                        weekly[w].insert(ip, cc);
                    }
                }
            }
            Self::classify_family(&mut weeks, &weekly);
        }
        ShiftAnalysis { weeks }
    }

    /// Context-based variant of [`ShiftAnalysis::compute`]: consumes the
    /// weekly bot maps already built (from the context's single
    /// geolocation join) instead of resolving every attack source again.
    pub fn compute_ctx(ctx: &crate::context::AnalysisContext) -> ShiftAnalysis {
        let num_weeks = ctx.dataset.window().num_weeks();
        let mut weeks = Self::empty_weeks(num_weeks);
        for fc in ctx.families() {
            if ctx.kernels.is_reference() {
                Self::classify_family(&mut weeks, &fc.weekly_bots);
            } else {
                Self::classify_family_dense(&mut weeks, &fc.weekly_bots, ctx.kernels);
            }
        }
        ShiftAnalysis { weeks }
    }

    fn empty_weeks(num_weeks: usize) -> Vec<WeekShift> {
        (0..num_weeks)
            .map(|week| WeekShift {
                week,
                existing_country_bots: 0,
                new_country_bots: 0,
            })
            .collect()
    }

    /// Classifies one family's weekly bot populations into existing- vs
    /// new-country shifts and accumulates the counts. Per-bot counts
    /// depend only on the *set* of countries seen so far, so map
    /// iteration order (and therefore the caller's choice of hasher)
    /// cannot affect the result.
    fn classify_family<S: std::hash::BuildHasher>(
        weeks: &mut [WeekShift],
        weekly: &[HashMap<IpAddr4, CountryCode, S>],
    ) {
        let mut seen: HashSet<CountryCode> = HashSet::new();
        for (w, bots_this_week) in weekly.iter().enumerate() {
            let fresh: HashSet<CountryCode> = bots_this_week
                .values()
                .copied()
                .filter(|cc| !seen.contains(cc))
                .collect();
            for cc in bots_this_week.values() {
                if fresh.contains(cc) {
                    weeks[w].new_country_bots += 1;
                } else {
                    weeks[w].existing_country_bots += 1;
                }
            }
            seen.extend(bots_this_week.values().copied());
        }
    }

    /// The chunked shift kernel: same classification as
    /// [`ShiftAnalysis::classify_family`], restated over a dense
    /// per-(week, country) count grid. One chunked pass over the weekly
    /// maps (the expensive hash iteration) accumulates the grid — pure
    /// integer adds into disjoint `(week, country)` cells, so any
    /// chunking merges to the same counts — and the classification then
    /// runs on the grid alone: a country's bots count as "new" exactly
    /// in its first active week, which is the set-based rule restated.
    fn classify_family_dense<S: std::hash::BuildHasher>(
        weeks: &mut [WeekShift],
        weekly: &[HashMap<IpAddr4, CountryCode, S>],
        policy: KernelPolicy,
    ) {
        let mut counts = vec![0u32; weekly.len() * CC_SLOTS];
        for range in policy.chunks(weekly.len()) {
            for w in range {
                let row = &mut counts[w * CC_SLOTS..(w + 1) * CC_SLOTS];
                for &cc in weekly[w].values() {
                    row[cc_slot(cc)] += 1;
                }
            }
        }
        const UNSEEN: u32 = u32::MAX;
        let mut first = [UNSEEN; CC_SLOTS];
        for w in 0..weekly.len() {
            for (slot, first_week) in first.iter_mut().enumerate() {
                if counts[w * CC_SLOTS + slot] > 0 {
                    *first_week = (*first_week).min(w as u32);
                }
            }
        }
        for w in 0..weekly.len() {
            for (slot, &first_week) in first.iter().enumerate() {
                let c = counts[w * CC_SLOTS + slot] as usize;
                if c == 0 {
                    continue;
                }
                if first_week == w as u32 {
                    weeks[w].new_country_bots += c;
                } else {
                    weeks[w].existing_country_bots += c;
                }
            }
        }
    }

    /// Total bots that shifted within existing countries across the
    /// window.
    pub fn total_existing(&self) -> usize {
        self.weeks.iter().map(|w| w.existing_country_bots).sum()
    }

    /// Total bots recruited in new countries across the window.
    pub fn total_new(&self) -> usize {
        self.weeks.iter().map(|w| w.new_country_bots).sum()
    }

    /// Ratio of existing- to new-country shifts — the paper's
    /// regionalization claim holds when this is roughly an order of
    /// magnitude or more (Fig. 8 plots the clusters on 10⁴ vs 10³ axes).
    pub fn regionalization_ratio(&self) -> Option<f64> {
        let new = self.total_new();
        if new == 0 {
            return None;
        }
        Some(self.total_existing() as f64 / new as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset};
    use ddos_schema::record::{BotRecord, Location};
    use ddos_schema::{Asn, BotnetId, CityId, DatasetBuilder, LatLon, OrgId, Timestamp};

    /// Builds a dataset where family attacks reference bots in known
    /// countries across weeks.
    fn shift_dataset() -> Dataset {
        let mut b = DatasetBuilder::new(crate::overview::test_support::window());
        let bot = |ip: u8, cc: &str| BotRecord {
            ip: IpAddr4::from_octets(203, 0, 113, ip),
            botnet: BotnetId(1),
            family: Family::Dirtjumper,
            location: Location {
                country: cc.parse().unwrap(),
                city: CityId(1),
                org: OrgId(1),
                asn: Asn(64_001),
                coords: LatLon::new_unchecked(50.0, 30.0),
            },
            first_seen: Timestamp(0),
            last_seen: Timestamp(100_000),
        };
        b.push_bot(bot(1, "RU")).unwrap();
        b.push_bot(bot(2, "RU")).unwrap();
        b.push_bot(bot(3, "UA")).unwrap();
        // Week 0: two RU bots. Week 1: an RU bot (existing) and a UA bot
        // (new country).
        let mut a1 = attack(Family::Dirtjumper, 1, 100, 10, 1);
        a1.sources = vec![
            IpAddr4::from_octets(203, 0, 113, 1),
            IpAddr4::from_octets(203, 0, 113, 2),
        ];
        let mut a2 = attack(Family::Dirtjumper, 2, 7 * 86_400 + 100, 10, 1);
        a2.sources = vec![
            IpAddr4::from_octets(203, 0, 113, 1),
            IpAddr4::from_octets(203, 0, 113, 3),
        ];
        b.push_attack(a1).unwrap();
        b.push_attack(a2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn classifies_existing_vs_new_countries() {
        let ds = shift_dataset();
        let idx = BotIndex::build(&ds);
        let s = ShiftAnalysis::compute(&ds, &idx);
        // Week 0: RU first appears → both bots count as new-country.
        assert_eq!(s.weeks[0].new_country_bots, 2);
        assert_eq!(s.weeks[0].existing_country_bots, 0);
        // Week 1: RU is existing, UA is new.
        assert_eq!(s.weeks[1].existing_country_bots, 1);
        assert_eq!(s.weeks[1].new_country_bots, 1);
        assert_eq!(s.total_existing(), 1);
        assert_eq!(s.total_new(), 3);
    }

    #[test]
    fn ratio_none_when_no_new_countries() {
        let ds = dataset(vec![]);
        let idx = BotIndex::build(&ds);
        let s = ShiftAnalysis::compute(&ds, &idx);
        assert_eq!(s.regionalization_ratio(), None);
        assert_eq!(s.total_existing() + s.total_new(), 0);
    }

    #[test]
    fn dense_kernel_matches_set_classifier_for_every_chunking() {
        // Weeks with repeats, gaps, and same-week multi-country mixes.
        let cc = |s: &str| -> CountryCode { s.parse().unwrap() };
        let ip = |n: u8| IpAddr4::from_octets(10, 0, 0, n);
        let weekly: Vec<HashMap<IpAddr4, CountryCode>> = vec![
            [(ip(1), cc("RU")), (ip(2), cc("RU")), (ip(3), cc("UA"))]
                .into_iter()
                .collect(),
            HashMap::new(),
            [(ip(1), cc("RU")), (ip(4), cc("DE")), (ip(5), cc("DE"))]
                .into_iter()
                .collect(),
            [(ip(3), cc("UA")), (ip(6), cc("BR"))].into_iter().collect(),
        ];
        let mut expect = ShiftAnalysis::empty_weeks(weekly.len());
        ShiftAnalysis::classify_family(&mut expect, &weekly);
        for policy in [
            KernelPolicy::Auto,
            KernelPolicy::Chunked(1),
            KernelPolicy::Chunked(3),
            KernelPolicy::Chunked(100),
        ] {
            let mut got = ShiftAnalysis::empty_weeks(weekly.len());
            ShiftAnalysis::classify_family_dense(&mut got, &weekly, policy);
            assert_eq!(got, expect, "{policy:?}");
        }
    }

    #[test]
    fn unresolvable_sources_are_skipped() {
        // Attack sources missing from the Botlist are ignored, not
        // fabricated.
        let ds = dataset(vec![attack(Family::Dirtjumper, 1, 100, 10, 1)]);
        let idx = BotIndex::build(&ds); // empty Botlist
        let s = ShiftAnalysis::compute(&ds, &idx);
        assert_eq!(s.total_existing() + s.total_new(), 0);
    }
}
