//! Figs. 9–11 — the geolocation dispersion of attack sources.
//!
//! For every attack, the participating bots are geolocated and the
//! paper's signed dispersion metric is computed (`ddos_geo::dispersion`):
//! the absolute sum of signed haversine distances to the population's
//! geographic center. A population whose bots all resolve to one city —
//! or that is otherwise east/west balanced — scores (near) zero and is
//! called **symmetric**; the paper reports 76.7% symmetric snapshots for
//! Pandora and 89.5% for Blackenergy, and Figs. 10–11 histogram the
//! *asymmetric* remainder.

use ddos_geo::dispersion;
use ddos_schema::{Dataset, Family, Timestamp};
use ddos_stats::{descriptive, Ecdf, Histogram};
use serde::{Deserialize, Serialize};

use crate::util::BotIndex;

/// Dispersion values at or below this are *symmetric* (km). At
/// city-level geolocation resolution single-city populations score an
/// exact zero; the tolerance only absorbs floating-point residue.
pub const SYMMETRY_TOL_KM: f64 = 1.0;

/// Fig. 9 reports families "with at least 10 snapshots (with active
/// attacks for more than 10 days)".
pub const MIN_ACTIVE_DAYS: usize = 10;

/// The dispersion series of one family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyDispersion {
    /// The family.
    pub family: Family,
    /// `(attack start, |signed sum| km)` in chronological order.
    pub series: Vec<(Timestamp, f64)>,
    /// Number of days on which the family attacked.
    pub active_days: usize,
}

impl FamilyDispersion {
    /// Computes the per-attack dispersion series of a family.
    pub fn compute(ds: &Dataset, bots: &BotIndex, family: Family) -> FamilyDispersion {
        let mut series = Vec::new();
        let mut days = std::collections::HashSet::new();
        for a in ds.attacks_of(family) {
            let coords = bots.coords_of(&a.sources);
            let Some(d) = dispersion(&coords) else {
                continue;
            };
            if let Some(day) = ds.window().day_index(a.start) {
                days.insert(day);
            }
            series.push((a.start, d.value()));
        }
        FamilyDispersion {
            family,
            series,
            active_days: days.len(),
        }
    }

    /// Whether the family qualifies for Fig. 9 (enough active days).
    pub fn qualifies_for_cdf(&self) -> bool {
        self.active_days >= MIN_ACTIVE_DAYS && !self.series.is_empty()
    }

    /// All dispersion values (km).
    pub fn values(&self) -> Vec<f64> {
        self.series.iter().map(|&(_, v)| v).collect()
    }

    /// The values with symmetric snapshots removed (Figs. 10–11).
    pub fn asymmetric_values(&self) -> Vec<f64> {
        self.series
            .iter()
            .map(|&(_, v)| v)
            .filter(|&v| v > SYMMETRY_TOL_KM)
            .collect()
    }

    /// Fraction of symmetric snapshots (the paper: 76.7% for Pandora,
    /// 89.5% for Blackenergy).
    pub fn symmetric_fraction(&self) -> f64 {
        if self.series.is_empty() {
            return 0.0;
        }
        let sym = self
            .series
            .iter()
            .filter(|&&(_, v)| v <= SYMMETRY_TOL_KM)
            .count();
        sym as f64 / self.series.len() as f64
    }

    /// The dispersion ECDF (one curve of Fig. 9), if non-empty.
    pub fn cdf(&self) -> Option<Ecdf> {
        Ecdf::new(&self.values())
    }

    /// Histogram of the asymmetric values (Figs. 10–11), `bins` bins
    /// from just above zero to the observed maximum.
    pub fn asymmetric_histogram(&self, bins: usize) -> Option<Histogram> {
        let values = self.asymmetric_values();
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        Histogram::linear(&values, 0.0, max.max(1.0), bins)
    }

    /// Mean of the asymmetric values (the "stationary state" level the
    /// paper quotes: ≈566 km for Pandora, ≈4,304 km for Blackenergy).
    pub fn asymmetric_mean(&self) -> Option<f64> {
        descriptive::mean(&self.asymmetric_values())
    }
}

/// Fig. 9 — dispersion CDFs of all qualifying families.
pub fn qualifying_families(ds: &Dataset, bots: &BotIndex) -> Vec<FamilyDispersion> {
    Family::ACTIVE
        .into_iter()
        .map(|f| FamilyDispersion::compute(ds, bots, f))
        .filter(FamilyDispersion::qualifies_for_cdf)
        .collect()
}

/// Context-based variant of [`qualifying_families`]: the per-family
/// series were already built during context construction (sharing its
/// single geolocation join), so this only filters and clones.
pub fn qualifying_families_ctx(ctx: &crate::context::AnalysisContext) -> Vec<FamilyDispersion> {
    ctx.families()
        .iter()
        .map(|fc| &fc.dispersion)
        .filter(|d| d.qualifies_for_cdf())
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::{attack, dataset, window};
    use ddos_schema::record::{BotRecord, Location};
    use ddos_schema::{Asn, BotnetId, CityId, DatasetBuilder, IpAddr4, LatLon, OrgId};

    fn bot(ip: u8, lat: f64, lon: f64) -> BotRecord {
        BotRecord {
            ip: IpAddr4::from_octets(203, 0, 113, ip),
            botnet: BotnetId(1),
            family: Family::Pandora,
            location: Location {
                country: "RU".parse().unwrap(),
                city: CityId(1),
                org: OrgId(1),
                asn: Asn(64_001),
                coords: LatLon::new_unchecked(lat, lon),
            },
            first_seen: Timestamp(0),
            last_seen: Timestamp(100_000),
        }
    }

    fn ip(last: u8) -> IpAddr4 {
        IpAddr4::from_octets(203, 0, 113, last)
    }

    fn build(attack_specs: Vec<(i64, Vec<u8>)>, bots: Vec<BotRecord>) -> Dataset {
        let mut b = DatasetBuilder::new(window());
        for bot in bots {
            b.push_bot(bot).unwrap();
        }
        for (i, (start, sources)) in attack_specs.into_iter().enumerate() {
            let mut a = attack(Family::Pandora, i as u64 + 1, start, 60, 1);
            a.sources = sources.into_iter().map(ip).collect();
            b.push_attack(a).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn single_city_attack_is_symmetric() {
        // Both bots share city-level coordinates → dispersion exactly 0.
        let ds = build(
            vec![(100, vec![1, 2])],
            vec![bot(1, 55.75, 37.61), bot(2, 55.75, 37.61)],
        );
        let idx = BotIndex::build(&ds);
        let fd = FamilyDispersion::compute(&ds, &idx, Family::Pandora);
        assert_eq!(fd.series.len(), 1);
        assert!(fd.series[0].1 <= SYMMETRY_TOL_KM);
        assert_eq!(fd.symmetric_fraction(), 1.0);
        assert!(fd.asymmetric_values().is_empty());
        assert_eq!(fd.asymmetric_mean(), None);
    }

    #[test]
    fn lat_lon_mixed_attack_is_asymmetric() {
        // East-west pair straddling the center plus a bot far north: the
        // latitude magnitude rides on the longitude sign (see
        // ddos-geo::center docs).
        let ds = build(
            vec![(100, vec![1, 2, 3])],
            vec![bot(1, 0.0, 0.0), bot(2, 0.0, 10.0), bot(3, 40.0, 5.0)],
        );
        let idx = BotIndex::build(&ds);
        let fd = FamilyDispersion::compute(&ds, &idx, Family::Pandora);
        assert_eq!(fd.symmetric_fraction(), 0.0);
        let mean = fd.asymmetric_mean().unwrap();
        assert!(mean > 1_000.0, "mean {mean}");
        let hist = fd.asymmetric_histogram(10).unwrap();
        assert_eq!(hist.total(), 1);
    }

    #[test]
    fn qualification_requires_active_days() {
        // One attack on one day: below the 10-day bar.
        let ds = build(vec![(100, vec![1])], vec![bot(1, 55.0, 37.0)]);
        let idx = BotIndex::build(&ds);
        let fd = FamilyDispersion::compute(&ds, &idx, Family::Pandora);
        assert_eq!(fd.active_days, 1);
        assert!(!fd.qualifies_for_cdf());
        assert!(qualifying_families(&ds, &idx).is_empty());
    }

    #[test]
    fn unresolvable_sources_yield_no_value() {
        let ds = dataset(vec![attack(Family::Pandora, 1, 100, 60, 1)]);
        let idx = BotIndex::build(&ds); // empty Botlist
        let fd = FamilyDispersion::compute(&ds, &idx, Family::Pandora);
        assert!(fd.series.is_empty());
        assert!(fd.cdf().is_none());
    }

    #[test]
    fn series_is_chronological() {
        let ds = build(
            vec![(500, vec![1]), (100, vec![1]), (300, vec![1])],
            vec![bot(1, 55.0, 37.0)],
        );
        let idx = BotIndex::build(&ds);
        let fd = FamilyDispersion::compute(&ds, &idx, Family::Pandora);
        let times: Vec<i64> = fd.series.iter().map(|&(t, _)| t.unix()).collect();
        assert_eq!(times, vec![100, 300, 500]);
    }
}
