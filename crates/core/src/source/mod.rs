//! §IV-A — source analysis: where the bots are, how they move, and how
//! predictable they are.

pub mod dispersion;
pub mod prediction;
pub mod shift;
