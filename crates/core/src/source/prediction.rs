//! Table IV / Figs. 12–13 — ARIMA prediction of the dispersion series.
//!
//! Protocol, exactly as §IV-A describes: take a family's dispersion
//! series in time order **with symmetric snapshots removed** (the paper
//! removes them before modeling — Figs. 10–13 and Table IV's means all
//! describe the asymmetric series), split it in half, fit an ARIMA model
//! on the first half, produce rolling one-step predictions for (up to)
//! the last 2,700 points of the second half, and compare prediction to
//! ground truth by mean, standard deviation, and cosine similarity.
//!
//! Families with too little data are excluded — the paper drops
//! Darkshell ("not enough data points for training the model") and only
//! tabulates five families.

use ddos_schema::{Dataset, Family};
use ddos_stats::timeseries::forecast::{split_forecast, SplitForecast};
use ddos_stats::ArimaSpec;
use serde::{Deserialize, Serialize};

use crate::source::dispersion::FamilyDispersion;
use crate::util::BotIndex;

/// Minimum asymmetric-series length to attempt a fit. Chosen so that on
/// the paper-scale trace exactly the paper's five Table IV families
/// qualify (Blackenergy, Colddeath, Dirtjumper, Optima, Pandora) while
/// YZF, Nitol, Ddoser, Aldibot and Darkshell fall out.
pub const MIN_SERIES_LEN: usize = 300;

/// Minimum days of attack activity to attempt a fit (drops the bursty
/// families — Darkshell's twelve days, Nitol's twenty-five).
pub const MIN_ACTIVE_DAYS: usize = 30;

/// The paper evaluates "the last 2,700 values" of the held-out half.
pub const MAX_EVAL_POINTS: usize = 2_700;

/// Why a family was excluded from Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Exclusion {
    /// Too few asymmetric dispersion values to train on.
    SeriesTooShort {
        /// Values available.
        got: usize,
    },
    /// Activity span too short.
    TooFewActiveDays {
        /// Days with attacks.
        got: usize,
    },
    /// The fit itself failed (degenerate series).
    FitFailed,
}

/// Table IV row: prediction statistics for one family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyPrediction {
    /// The family.
    pub family: Family,
    /// Model order used.
    pub spec: ArimaSpec,
    /// The split-forecast output (predictions, truth, errors, Table IV
    /// statistics).
    pub forecast: SplitForecast,
}

/// The full §IV-A prediction analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionAnalysis {
    /// Families that qualified, with their Table IV rows.
    pub rows: Vec<FamilyPrediction>,
    /// Families excluded, with reasons.
    pub excluded: Vec<(Family, Exclusion)>,
}

impl PredictionAnalysis {
    /// Runs the Table IV protocol over all active families.
    pub fn compute(ds: &Dataset, bots: &BotIndex, spec: ArimaSpec) -> PredictionAnalysis {
        let mut rows = Vec::new();
        let mut excluded = Vec::new();
        for family in Family::ACTIVE {
            match predict_family(ds, bots, family, spec) {
                Ok(row) => rows.push(row),
                Err(reason) => excluded.push((family, reason)),
            }
        }
        PredictionAnalysis { rows, excluded }
    }

    /// Context-based variant of [`PredictionAnalysis::compute`]: reads
    /// each family's dispersion series from the context instead of
    /// recomputing the geolocation join a second time.
    pub fn compute_ctx(ctx: &crate::context::AnalysisContext) -> PredictionAnalysis {
        let mut rows = Vec::new();
        let mut excluded = Vec::new();
        for fc in ctx.families() {
            match fit_dispersion(&fc.dispersion, ctx.spec) {
                Ok(row) => rows.push(row),
                Err(reason) => excluded.push((fc.family, reason)),
            }
        }
        PredictionAnalysis { rows, excluded }
    }

    /// The row of one family, if it qualified.
    pub fn row(&self, family: Family) -> Option<&FamilyPrediction> {
        self.rows.iter().find(|r| r.family == family)
    }
}

/// Runs the protocol for one family.
pub fn predict_family(
    ds: &Dataset,
    bots: &BotIndex,
    family: Family,
    spec: ArimaSpec,
) -> Result<FamilyPrediction, Exclusion> {
    fit_dispersion(&FamilyDispersion::compute(ds, bots, family), spec)
}

/// The gates and fit of the Table IV protocol, given a family's
/// (already computed) dispersion series.
fn fit_dispersion(
    dispersion: &FamilyDispersion,
    spec: ArimaSpec,
) -> Result<FamilyPrediction, Exclusion> {
    if dispersion.active_days < MIN_ACTIVE_DAYS {
        return Err(Exclusion::TooFewActiveDays {
            got: dispersion.active_days,
        });
    }
    let series = dispersion.asymmetric_values();
    if series.len() < MIN_SERIES_LEN {
        return Err(Exclusion::SeriesTooShort { got: series.len() });
    }
    let forecast =
        split_forecast(&series, spec, Some(MAX_EVAL_POINTS)).map_err(|_| Exclusion::FitFailed)?;
    Ok(FamilyPrediction {
        family: dispersion.family,
        spec,
        forecast,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview::test_support::window;
    use ddos_schema::record::{BotRecord, Location};
    use ddos_schema::{
        Asn, AttackRecord, BotnetId, CityId, DatasetBuilder, DdosId, IpAddr4, LatLon, OrgId,
        Protocol, Timestamp,
    };

    /// A dataset whose Pandora dispersion series is an AR-ish alternation
    /// between two asymmetric city mixes, long enough to fit.
    fn predictable_dataset() -> ddos_schema::Dataset {
        let mut b = DatasetBuilder::new(window());
        // Three bot locations: a tight Moscow pair plus far-north and
        // far-east strays that create two distinct dispersion levels.
        let locs: Vec<(u8, f64, f64)> = vec![
            (1, 55.75, 37.61),
            (2, 55.75, 37.61),
            (3, 65.0, 40.0),
            (4, 60.0, 60.0),
        ];
        for (o, lat, lon) in &locs {
            b.push_bot(BotRecord {
                ip: IpAddr4::from_octets(203, 0, 113, *o),
                botnet: BotnetId(1),
                family: Family::Pandora,
                location: Location {
                    country: "RU".parse().unwrap(),
                    city: CityId(*o as u32),
                    org: OrgId(1),
                    asn: Asn(64_001),
                    coords: LatLon::new_unchecked(*lat, *lon),
                },
                first_seen: Timestamp(0),
                last_seen: Timestamp(500_000),
            })
            .unwrap();
        }
        // 800 attacks spread over all 10 days (> MIN_ACTIVE_DAYS is not
        // satisfiable in a 10-day window, so tests call predict_family
        // with a relaxed day gate via the full window coverage).
        for i in 0..800u64 {
            let sources = if i % 2 == 0 {
                vec![1u8, 2, 3]
            } else {
                vec![1u8, 2, 4]
            };
            b.push_attack(AttackRecord {
                id: DdosId(i + 1),
                botnet: BotnetId(1),
                family: Family::Pandora,
                category: Protocol::Http,
                target_ip: IpAddr4::from_octets(198, 51, 100, 1),
                target: Location {
                    country: "US".parse().unwrap(),
                    city: CityId(99),
                    org: OrgId(99),
                    asn: Asn(64_099),
                    coords: LatLon::new_unchecked(38.0, -77.0),
                },
                start: Timestamp(i as i64 * 1_000),
                end: Timestamp(i as i64 * 1_000 + 60),
                sources: sources
                    .into_iter()
                    .map(|o| IpAddr4::from_octets(203, 0, 113, o))
                    .collect(),
            })
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn too_few_days_is_excluded() {
        let ds = predictable_dataset();
        let idx = BotIndex::build(&ds);
        // The 10-day test window can never reach MIN_ACTIVE_DAYS = 30.
        let err = predict_family(&ds, &idx, Family::Pandora, ArimaSpec::DEFAULT).unwrap_err();
        assert!(matches!(err, Exclusion::TooFewActiveDays { got } if got <= 10));
    }

    #[test]
    fn series_gate_applies_after_day_gate() {
        let ds = predictable_dataset();
        let idx = BotIndex::build(&ds);
        let d = FamilyDispersion::compute(&ds, &idx, Family::Pandora);
        // The alternating mixes are asymmetric: the series is long.
        assert!(
            d.asymmetric_values().len() >= 700,
            "{}",
            d.asymmetric_values().len()
        );
    }

    #[test]
    fn forecast_on_alternating_series_is_accurate() {
        // Bypass the day gate: run the forecast machinery directly on the
        // dispersion series, as predict_family would.
        let ds = predictable_dataset();
        let idx = BotIndex::build(&ds);
        let d = FamilyDispersion::compute(&ds, &idx, Family::Pandora);
        let series = d.asymmetric_values();
        let sf = split_forecast(&series, ArimaSpec::new(2, 0, 1), Some(MAX_EVAL_POINTS)).unwrap();
        // A two-level alternation is almost perfectly predictable by an
        // AR(2) — cosine similarity in the paper's >0.9 regime.
        assert!(sf.eval.cosine > 0.9, "cosine {}", sf.eval.cosine);
    }

    #[test]
    fn analysis_collects_exclusions_for_absent_families() {
        let ds = predictable_dataset();
        let idx = BotIndex::build(&ds);
        let analysis = PredictionAnalysis::compute(&ds, &idx, ArimaSpec::DEFAULT);
        // Nothing qualifies in a 10-day window; every family is excluded.
        assert!(analysis.rows.is_empty());
        assert_eq!(analysis.excluded.len(), Family::ACTIVE.len());
        assert!(analysis.row(Family::Pandora).is_none());
    }
}
