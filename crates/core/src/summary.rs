//! Table III — the workload summary.
//!
//! The distinct-count machinery lives in [`ddos_schema::Dataset::summary`];
//! this module wraps it with the paper's reference values so reports and
//! tests can show paper-vs-measured side by side.

use ddos_schema::{Dataset, DatasetSummary};
use serde::{Deserialize, Serialize};

/// The paper's Table III values, for comparison columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperSummary {
    /// Attacker-side `(ips, cities, countries, organizations, asns)`.
    pub attackers: (usize, usize, usize, usize, usize),
    /// Victim-side `(ips, cities, countries, organizations, asns)`.
    pub victims: (usize, usize, usize, usize, usize),
    /// Total attacks.
    pub attacks: usize,
    /// Total botnet generations.
    pub botnets: usize,
    /// Distinct traffic types.
    pub traffic_types: usize,
}

/// Table III as printed in the paper.
pub const PAPER_TABLE_III: PaperSummary = PaperSummary {
    attackers: (310_950, 2_897, 186, 3_498, 3_973),
    victims: (9_026, 616, 84, 1_074, 1_260),
    attacks: 50_704,
    botnets: 674,
    traffic_types: 7,
};

/// A measured summary next to the paper's reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SummaryComparison {
    /// Distinct counts measured on the dataset at hand.
    pub measured: DatasetSummary,
    /// The paper's Table III.
    pub paper: PaperSummary,
}

impl SummaryComparison {
    /// Computes the measured summary and pairs it with the reference.
    pub fn compute(ds: &Dataset) -> SummaryComparison {
        SummaryComparison {
            measured: ds.summary(),
            paper: PAPER_TABLE_III,
        }
    }

    /// Relative error of a measured count against the paper value
    /// (`|measured − paper| / paper`).
    pub fn relative_error(measured: usize, paper: usize) -> f64 {
        if paper == 0 {
            return if measured == 0 { 0.0 } else { f64::INFINITY };
        }
        (measured as f64 - paper as f64).abs() / paper as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_the_table() {
        assert_eq!(PAPER_TABLE_III.attacks, 50_704);
        assert_eq!(PAPER_TABLE_III.botnets, 674);
        assert_eq!(PAPER_TABLE_III.attackers.0, 310_950);
        assert_eq!(PAPER_TABLE_III.victims.2, 84);
    }

    #[test]
    fn relative_error_behaviour() {
        assert_eq!(SummaryComparison::relative_error(100, 100), 0.0);
        assert!((SummaryComparison::relative_error(110, 100) - 0.1).abs() < 1e-12);
        assert_eq!(SummaryComparison::relative_error(0, 0), 0.0);
        assert!(SummaryComparison::relative_error(5, 0).is_infinite());
    }

    #[test]
    fn compute_wraps_dataset_summary() {
        use crate::overview::test_support::{attack, dataset};
        use ddos_schema::Family;
        let ds = dataset(vec![attack(Family::Dirtjumper, 1, 0, 10, 1)]);
        let cmp = SummaryComparison::compute(&ds);
        assert_eq!(cmp.measured.attacks, 1);
        assert_eq!(cmp.paper.attacks, 50_704);
    }
}
