//! Deterministic fault-injection seam for the ddos workspace.
//!
//! Hot paths (ingest, the epoch fold, the pass scheduler) consult named
//! *failpoints* — [`check`] calls keyed by the constants in [`names`] —
//! and a test installs a seeded [`FailPlan`] describing which hits of
//! which failpoint should fail. The injected failure surfaces to the
//! caller as an ordinary `Err` through the crate-local error type of
//! whichever layer hit it; nothing here panics or unwinds.
//!
//! Three properties the testkit relies on:
//!
//! * **Deterministic** — a plan is a pure function of its builder calls
//!   and seed. `fail_nth` arms fire on an exact hit index; probability
//!   arms hash `(seed, name, hit)` so the same plan replays the same
//!   schedule on every run and platform.
//! * **Serialized** — [`FailPlan::install`] takes a process-wide gate,
//!   so concurrently running `cargo test` threads that inject faults
//!   queue up instead of observing each other's plans. The returned
//!   [`FailScope`] clears the plan on drop (including on panic).
//! * **Release-inert** — [`ACTIVE`] is `cfg!(debug_assertions)`; in
//!   release builds [`check`] is a constant-folded `None` and the seam
//!   costs nothing, even when the `failpoints` cargo feature is unified
//!   into a release graph by a test-only dependent. The `const` assert
//!   below makes "injection compiled out of release binaries" a
//!   compile-time guarantee rather than a convention.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Whether the injection machinery is live in this build. Constant
/// `false` outside debug builds: every [`check`] call folds to `None`.
pub const ACTIVE: bool = cfg!(debug_assertions);

// Compile-time check (CI builds release binaries through this): if
// `ACTIVE` is ever decoupled from the build profile — e.g. someone
// hard-wires it `true` to "make the soak inject in release" — the
// workspace stops compiling instead of shipping a live seam.
const _: () = assert!(
    ACTIVE == cfg!(debug_assertions),
    "fault injection must be compiled out of release builds"
);

/// Canonical failpoint names. Call sites pass these constants to
/// [`check`]; tests pass them to [`FailPlan`] builders. `ALL` drives
/// the testkit's every-failpoint coverage loop.
pub mod names {
    /// `File::open` + `mmap` in `Dataset::open_with_stats`.
    pub const INGEST_OPEN: &str = "ingest/open";
    /// Top of the v1 serial container decode.
    pub const INGEST_V1_DECODE: &str = "ingest/v1/decode";
    /// After the framed v2 header/directory parse, before any frame.
    pub const INGEST_FRAMED_HEADER: &str = "ingest/framed/header";
    /// Per-frame decode body (serial and worker paths), hit once per
    /// frame in frame order on the serial path.
    pub const INGEST_FRAMED_FRAME: &str = "ingest/framed/frame";
    /// Per-chunk CSV parse body (serial parse counts as one chunk).
    pub const INGEST_CSV_CHUNK: &str = "ingest/csv/chunk";
    /// Before each epoch-context merge (pairwise fold, incremental
    /// append, stream push) — checked before any state is consumed.
    pub const EPOCH_MERGE: &str = "epoch/merge";
    /// Per-pass body in the scheduler, hit in registry order on the
    /// serial path.
    pub const SCHEDULER_PASS: &str = "scheduler/pass";

    /// Every failpoint threaded through the workspace.
    pub const ALL: [&str; 7] = [
        INGEST_OPEN,
        INGEST_V1_DECODE,
        INGEST_FRAMED_HEADER,
        INGEST_FRAMED_FRAME,
        INGEST_CSV_CHUNK,
        EPOCH_MERGE,
        SCHEDULER_PASS,
    ];
}

/// One injected failure, returned by [`check`] at the hit a plan arm
/// fired on. Call sites format it into their own error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injected {
    /// The failpoint name that fired.
    pub name: String,
    /// Zero-based hit index at which it fired.
    pub hit: u64,
}

impl std::fmt::Display for Injected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at {} (hit {})", self.name, self.hit)
    }
}

#[derive(Debug, Clone, Copy)]
enum Rule {
    /// Fail exactly the `n`th hit (0-based), succeed all others.
    Nth(u64),
    /// Fail every hit.
    Always,
    /// Fail each hit independently with probability `p`, decided by a
    /// deterministic hash of `(seed, name, hit)`.
    Probability(f64),
}

struct Arm {
    rule: Rule,
    hits: AtomicU64,
}

struct PlanState {
    seed: u64,
    arms: HashMap<String, Vec<Arm>>,
}

/// SplitMix64: tiny, seedable, and good enough to decorrelate
/// `(seed, name, hit)` triples for probability arms.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn name_hash(name: &str) -> u64 {
    // FNV-1a 64, matching the digest hash used elsewhere in the repo.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl PlanState {
    fn decide(&self, name: &str) -> Option<Injected> {
        let arms = self.arms.get(name)?;
        let mut fired = None;
        for arm in arms {
            let hit = arm.hits.fetch_add(1, Ordering::Relaxed);
            let fail = match arm.rule {
                Rule::Nth(n) => hit == n,
                Rule::Always => true,
                Rule::Probability(p) => {
                    let h = splitmix64(self.seed ^ name_hash(name) ^ hit.wrapping_mul(0x9E37));
                    // Top 53 bits -> uniform in [0, 1).
                    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                    u < p
                }
            };
            if fail && fired.is_none() {
                fired = Some(Injected {
                    name: name.to_string(),
                    hit,
                });
            }
        }
        fired
    }

    fn hits(&self, name: &str) -> u64 {
        self.arms
            .get(name)
            .and_then(|arms| arms.first())
            .map(|a| a.hits.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A seeded, schedule-driven fault plan. Build one with the `fail_*`
/// methods, then [`install`](Self::install) it for the duration of the
/// operation under test.
#[derive(Default)]
pub struct FailPlan {
    seed: u64,
    arms: HashMap<String, Vec<Arm>>,
}

impl FailPlan {
    /// An empty plan (seed 0). Installing it makes every failpoint
    /// succeed while still counting hits for arms added later.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty plan whose probability arms draw from `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            arms: HashMap::new(),
        }
    }

    fn arm(mut self, name: &str, rule: Rule) -> Self {
        self.arms.entry(name.to_string()).or_default().push(Arm {
            rule,
            hits: AtomicU64::new(0),
        });
        self
    }

    /// Fail exactly the `nth` hit (0-based) of `name`. An `nth` of
    /// `u64::MAX` is a practical "never fire, but count hits" probe —
    /// [`FailScope::hits`] then reports how often the seam was
    /// consulted.
    pub fn fail_nth(self, name: &str, nth: u64) -> Self {
        self.arm(name, Rule::Nth(nth))
    }

    /// Fail every hit of `name`.
    pub fn fail_always(self, name: &str) -> Self {
        self.arm(name, Rule::Always)
    }

    /// Fail each hit of `name` independently with probability `p`,
    /// decided deterministically from the plan seed.
    pub fn fail_with_probability(self, name: &str, p: f64) -> Self {
        self.arm(name, Rule::Probability(p))
    }

    /// Install the plan process-wide and return the guard that keeps it
    /// active. Serializes against every other installed plan: a second
    /// `install` blocks until the first scope drops, so parallel test
    /// threads cannot observe each other's faults. In release builds
    /// the plan installs but [`check`] never consults it ([`ACTIVE`]).
    pub fn install(self) -> FailScope {
        let gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        let state = Arc::new(PlanState {
            seed: self.seed,
            arms: self.arms,
        });
        *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&state));
        INSTALLED.store(true, Ordering::Release);
        FailScope { state, _gate: gate }
    }
}

static GATE: Mutex<()> = Mutex::new(());
static PLAN: RwLock<Option<Arc<PlanState>>> = RwLock::new(None);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Keeps a [`FailPlan`] active; dropping it (normally or during a
/// panic unwind) clears the plan and releases the process-wide gate.
pub struct FailScope {
    state: Arc<PlanState>,
    _gate: MutexGuard<'static, ()>,
}

impl FailScope {
    /// How many times `name` has been consulted under this plan (0 if
    /// the plan has no arm for it — add a `fail_nth(name, u64::MAX)`
    /// probe arm to count without ever firing).
    pub fn hits(&self, name: &str) -> u64 {
        self.state.hits(name)
    }
}

impl Drop for FailScope {
    fn drop(&mut self) {
        INSTALLED.store(false, Ordering::Release);
        *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Consult the failpoint `name`. Returns `Some` when the installed
/// plan schedules a failure for this hit; the caller maps it into its
/// own error type and returns `Err`. Constant-folds to `None` in
/// release builds and costs one relaxed atomic load in debug builds
/// with no plan installed.
#[inline]
pub fn check(name: &str) -> Option<Injected> {
    if !ACTIVE || !INSTALLED.load(Ordering::Acquire) {
        return None;
    }
    let plan = PLAN.read().unwrap_or_else(|e| e.into_inner()).clone()?;
    plan.decide(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_plan_means_no_injection() {
        assert_eq!(check(names::EPOCH_MERGE), None);
    }

    #[test]
    fn nth_arm_fires_exactly_once() {
        let scope = FailPlan::new().fail_nth(names::SCHEDULER_PASS, 2).install();
        let fired: Vec<bool> = (0..5)
            .map(|_| check(names::SCHEDULER_PASS).is_some())
            .collect();
        assert_eq!(fired, [false, false, true, false, false]);
        assert_eq!(scope.hits(names::SCHEDULER_PASS), 5);
        // Other names are untouched.
        assert_eq!(check(names::INGEST_OPEN), None);
    }

    #[test]
    fn always_arm_reports_hit_index() {
        let _scope = FailPlan::new().fail_always(names::INGEST_OPEN).install();
        let first = check(names::INGEST_OPEN).expect("always arm must fire");
        let second = check(names::INGEST_OPEN).expect("always arm must fire");
        assert_eq!((first.hit, second.hit), (0, 1));
        assert_eq!(first.name, names::INGEST_OPEN);
        assert!(first.to_string().contains("injected fault at ingest/open"));
    }

    #[test]
    fn probability_schedule_is_deterministic() {
        let run = || {
            let _scope = FailPlan::seeded(42)
                .fail_with_probability(names::INGEST_FRAMED_FRAME, 0.3)
                .install();
            (0..64)
                .map(|_| check(names::INGEST_FRAMED_FRAME).is_some())
                .collect::<Vec<bool>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert!(a.iter().any(|&f| f), "p=0.3 over 64 hits should fire");
        assert!(!a.iter().all(|&f| f), "p=0.3 should not always fire");

        let other = {
            let _scope = FailPlan::seeded(43)
                .fail_with_probability(names::INGEST_FRAMED_FRAME, 0.3)
                .install();
            (0..64)
                .map(|_| check(names::INGEST_FRAMED_FRAME).is_some())
                .collect::<Vec<bool>>()
        };
        assert_ne!(a, other, "different seeds should differ somewhere");
    }

    #[test]
    fn scope_drop_clears_the_plan() {
        {
            let _scope = FailPlan::new().fail_always(names::EPOCH_MERGE).install();
            assert!(check(names::EPOCH_MERGE).is_some());
        }
        assert_eq!(check(names::EPOCH_MERGE), None);
    }

    #[test]
    fn all_lists_every_name_once() {
        let mut names: Vec<&str> = names::ALL.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), super::names::ALL.len());
    }
}
